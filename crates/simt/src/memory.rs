//! Simulated global (device) memory.
//!
//! Kernels from many blocks run concurrently on host threads, so shared
//! mutable output buffers must be race-safe. [`GlobalMem`] wraps a borrowed
//! slice in per-element atomic cells (relaxed ordering): plain
//! `load`/`store` model ordinary global loads and stores, and
//! `fetch_add`/`fetch_min`/`fetch_max`/`cas` model CUDA's `atomicAdd` /
//! `atomicMin` / `atomicMax` / `atomicCAS` — including the floating-point
//! variants, implemented with compare-exchange loops over the bit pattern
//! exactly as one would on pre-Pascal hardware.
//!
//! A racy kernel therefore produces an unspecified *value*, never undefined
//! behaviour — matching CUDA's semantics for conflicting non-atomic global
//! writes closely enough for a simulator.
//!
//! Under the parallel host backend ([`crate::host`]), float `fetch_add`s
//! on views created *before* the launch are deferred and replayed in
//! block order (each view snapshots a launch-epoch counter at
//! construction, so eligibility is decided per view, never by raw
//! pointer). Two contract points follow: the return value of a deferred
//! add is unspecified, and the same block must not `load`/`store`/
//! `fetch_min`/`fetch_max`/`cas` a cell it has `fetch_add`ed during the
//! launch (debug builds panic). Views created inside a kernel body —
//! block-local scratch — always apply adds live, so scratch accumulation
//! and read-back behave identically on every backend.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

mod sealed {
    pub trait Sealed {}
    impl Sealed for f32 {}
    impl Sealed for f64 {}
    impl Sealed for u32 {}
    impl Sealed for u64 {}
    impl Sealed for i32 {}
    impl Sealed for i64 {}
}

/// Scalar element types storable in [`GlobalMem`].
///
/// Each scalar maps to an atomic cell of identical size and alignment; the
/// trait is sealed because the soundness of [`GlobalMem::new`] depends on
/// that layout guarantee (documented on `std::sync::atomic`).
pub trait Scalar: Copy + PartialEq + std::fmt::Debug + Send + Sync + sealed::Sealed {
    /// The atomic cell type backing this scalar.
    type Atomic: Sync;
    /// Load with relaxed ordering.
    fn atomic_load(cell: &Self::Atomic) -> Self;
    /// Store with relaxed ordering.
    fn atomic_store(cell: &Self::Atomic, v: Self);
    /// `fetch_add` returning the previous value.
    fn atomic_add(cell: &Self::Atomic, v: Self) -> Self;
    /// `fetch_min` returning the previous value.
    fn atomic_min(cell: &Self::Atomic, v: Self) -> Self;
    /// `fetch_max` returning the previous value.
    fn atomic_max(cell: &Self::Atomic, v: Self) -> Self;
    /// Compare-and-swap: if the current value equals `expect`, store `new`;
    /// returns the value observed before the operation.
    fn atomic_cas(cell: &Self::Atomic, expect: Self, new: Self) -> Self;
    /// Parallel-backend hook: try to *defer* a `fetch_add` instead of
    /// applying it (floats only — integer addition is associative, so
    /// integers always apply live and this default stands). Returns
    /// `true` when the add was logged for replay at merge time; see
    /// `crate::host::defer_add_f32` for the eligibility rule keyed on
    /// `created_epoch` (the owning [`GlobalMem`]'s creation snapshot).
    #[inline]
    fn try_defer_add(_cell: &Self::Atomic, _v: Self, _created_epoch: u64) -> bool {
        false
    }
}

macro_rules! int_scalar {
    ($t:ty, $a:ty) => {
        impl Scalar for $t {
            type Atomic = $a;
            #[inline]
            fn atomic_load(cell: &Self::Atomic) -> Self {
                cell.load(Ordering::Relaxed) as $t
            }
            #[inline]
            fn atomic_store(cell: &Self::Atomic, v: Self) {
                cell.store(v as _, Ordering::Relaxed)
            }
            #[inline]
            fn atomic_add(cell: &Self::Atomic, v: Self) -> Self {
                cell.fetch_add(v as _, Ordering::Relaxed) as $t
            }
            #[inline]
            fn atomic_min(cell: &Self::Atomic, v: Self) -> Self {
                let mut cur = cell.load(Ordering::Relaxed);
                loop {
                    let cur_t = cur as $t;
                    if v >= cur_t {
                        return cur_t;
                    }
                    match cell.compare_exchange_weak(
                        cur,
                        v as _,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(prev) => return prev as $t,
                        Err(now) => cur = now,
                    }
                }
            }
            #[inline]
            fn atomic_max(cell: &Self::Atomic, v: Self) -> Self {
                let mut cur = cell.load(Ordering::Relaxed);
                loop {
                    let cur_t = cur as $t;
                    if v <= cur_t {
                        return cur_t;
                    }
                    match cell.compare_exchange_weak(
                        cur,
                        v as _,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(prev) => return prev as $t,
                        Err(now) => cur = now,
                    }
                }
            }
            #[inline]
            fn atomic_cas(cell: &Self::Atomic, expect: Self, new: Self) -> Self {
                match cell.compare_exchange(
                    expect as _,
                    new as _,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(prev) | Err(prev) => prev as $t,
                }
            }
        }
    };
}

int_scalar!(u32, AtomicU32);
int_scalar!(u64, AtomicU64);
int_scalar!(i32, AtomicU32);
int_scalar!(i64, AtomicU64);

macro_rules! float_scalar {
    ($t:ty, $a:ty, $bits:ty, $defer:ident) => {
        impl Scalar for $t {
            type Atomic = $a;
            #[inline]
            fn atomic_load(cell: &Self::Atomic) -> Self {
                <$t>::from_bits(cell.load(Ordering::Relaxed))
            }
            #[inline]
            fn atomic_store(cell: &Self::Atomic, v: Self) {
                cell.store(v.to_bits(), Ordering::Relaxed)
            }
            #[inline]
            fn atomic_add(cell: &Self::Atomic, v: Self) -> Self {
                let mut cur = cell.load(Ordering::Relaxed);
                loop {
                    let old = <$t>::from_bits(cur);
                    let new = (old + v).to_bits();
                    match cell.compare_exchange_weak(
                        cur,
                        new,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => return old,
                        Err(now) => cur = now,
                    }
                }
            }
            #[inline]
            fn atomic_min(cell: &Self::Atomic, v: Self) -> Self {
                let mut cur = cell.load(Ordering::Relaxed);
                loop {
                    let old = <$t>::from_bits(cur);
                    // NaN-aware: keep `old` unless `v` compares strictly less.
                    if v.partial_cmp(&old) != Some(core::cmp::Ordering::Less) {
                        return old;
                    }
                    match cell.compare_exchange_weak(
                        cur,
                        v.to_bits(),
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => return old,
                        Err(now) => cur = now,
                    }
                }
            }
            #[inline]
            fn atomic_max(cell: &Self::Atomic, v: Self) -> Self {
                let mut cur = cell.load(Ordering::Relaxed);
                loop {
                    let old = <$t>::from_bits(cur);
                    // NaN-aware: keep `old` unless `v` compares strictly greater.
                    if v.partial_cmp(&old) != Some(core::cmp::Ordering::Greater) {
                        return old;
                    }
                    match cell.compare_exchange_weak(
                        cur,
                        v.to_bits(),
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => return old,
                        Err(now) => cur = now,
                    }
                }
            }
            #[inline]
            fn atomic_cas(cell: &Self::Atomic, expect: Self, new: Self) -> Self {
                match cell.compare_exchange(
                    expect.to_bits(),
                    new.to_bits(),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(prev) | Err(prev) => <$t>::from_bits(prev),
                }
            }
            #[inline]
            fn try_defer_add(cell: &Self::Atomic, v: Self, created_epoch: u64) -> bool {
                // Float addition is not associative, so under the
                // parallel host backend adds against launch-level
                // buffers are *logged* and replayed in block order at
                // merge time (see `crate::host`); block-local buffers
                // (created during the run) fall through to the live CAS
                // loop, which is both sound and order-deterministic.
                crate::host::$defer(cell, v, created_epoch)
            }
        }
    };
}

float_scalar!(f32, AtomicU32, u32, defer_add_f32);
float_scalar!(f64, AtomicU64, u64, defer_add_f64);

/// A view of a host buffer as simulated device global memory.
///
/// Created from an exclusive borrow, so for the lifetime of the view the
/// simulator is the only writer; every access goes through atomic cells.
pub struct GlobalMem<'a, T: Scalar> {
    cells: &'a [T::Atomic],
    /// Launch-epoch snapshot taken at construction. The parallel host
    /// backend defers float `fetch_add`s only for views whose snapshot
    /// predates the executor run — i.e. buffers that provably outlive
    /// the launch — and applies adds on block-local scratch live (see
    /// [`crate::host`]).
    epoch: u64,
}

// Manual impls: the derive would demand `T::Atomic: Clone`, but the view is
// just a shared slice reference and is always copyable.
impl<T: Scalar> Clone for GlobalMem<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T: Scalar> Copy for GlobalMem<'_, T> {}

impl<'a, T: Scalar> GlobalMem<'a, T> {
    /// Wrap `data` as device-visible memory.
    ///
    /// The exclusive borrow is converted to a shared slice of atomic cells.
    /// This is sound because (a) the borrow guarantees no other references
    /// exist for `'a`, and (b) `T` and `T::Atomic` have identical size and
    /// alignment (guaranteed by the std atomics documentation and enforced
    /// by the sealed [`Scalar`] impls).
    pub fn new(data: &'a mut [T]) -> Self {
        debug_assert_eq!(
            std::mem::size_of::<T>(),
            std::mem::size_of::<T::Atomic>(),
            "Scalar/Atomic layout mismatch"
        );
        // SAFETY: exclusive borrow, identical layout, atomics allow any
        // aliasing pattern afterwards.
        let cells =
            unsafe { std::slice::from_raw_parts(data.as_ptr() as *const T::Atomic, data.len()) };
        Self {
            cells,
            epoch: crate::host::creation_epoch(),
        }
    }

    /// Debug-build guard against same-block read-your-own-write on a
    /// deferred float `fetch_add` target (no-op in release; see
    /// [`crate::host::debug_assert_no_pending_add`]).
    #[inline]
    fn check_no_pending_add(&self, i: usize) {
        crate::host::debug_assert_no_pending_add(&self.cells[i] as *const T::Atomic as usize);
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` if the view is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Ordinary global load.
    #[inline]
    pub fn load(&self, i: usize) -> T {
        self.check_no_pending_add(i);
        T::atomic_load(&self.cells[i])
    }

    /// Ordinary global store.
    #[inline]
    pub fn store(&self, i: usize, v: T) {
        self.check_no_pending_add(i);
        T::atomic_store(&self.cells[i], v)
    }

    /// `atomicAdd`: add `v` to element `i`, returning the previous value.
    ///
    /// Under the parallel host backend, a float add on a launch-level
    /// view is deferred to merge time: the return value then reflects
    /// the launch-start cell and is unspecified for ordering-sensitive
    /// uses, and the cell must not be read again by this block during
    /// the launch (debug builds panic; see [`crate::host`]).
    #[inline]
    pub fn fetch_add(&self, i: usize, v: T) -> T {
        let cell = &self.cells[i];
        if T::try_defer_add(cell, v, self.epoch) {
            return T::atomic_load(cell);
        }
        T::atomic_add(cell, v)
    }

    /// `atomicMin`: lower element `i` to `v` if smaller, returning the
    /// previous value.
    #[inline]
    pub fn fetch_min(&self, i: usize, v: T) -> T {
        self.check_no_pending_add(i);
        T::atomic_min(&self.cells[i], v)
    }

    /// `atomicMax`: raise element `i` to `v` if larger, returning the
    /// previous value.
    #[inline]
    pub fn fetch_max(&self, i: usize, v: T) -> T {
        self.check_no_pending_add(i);
        T::atomic_max(&self.cells[i], v)
    }

    /// `atomicCAS` on element `i`.
    #[inline]
    pub fn cas(&self, i: usize, expect: T, new: T) -> T {
        self.check_no_pending_add(i);
        T::atomic_cas(&self.cells[i], expect, new)
    }
}

impl<T: Scalar> std::fmt::Debug for GlobalMem<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "GlobalMem<{}>[len={}]", std::any::type_name::<T>(), self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_then_load_roundtrips() {
        let mut buf = vec![0.0f32; 8];
        let g = GlobalMem::new(&mut buf);
        g.store(3, 1.5);
        assert_eq!(g.load(3), 1.5);
        let _ = g;
        assert_eq!(buf[3], 1.5);
    }

    #[test]
    fn float_fetch_add_accumulates() {
        let mut buf = vec![0.0f64; 1];
        let g = GlobalMem::new(&mut buf);
        for _ in 0..100 {
            g.fetch_add(0, 0.5);
        }
        assert_eq!(g.load(0), 50.0);
    }

    #[test]
    fn float_fetch_min_mirrors_atomic_min_semantics() {
        let mut buf = vec![f32::INFINITY; 1];
        let g = GlobalMem::new(&mut buf);
        assert_eq!(g.fetch_min(0, 3.0), f32::INFINITY);
        assert_eq!(g.fetch_min(0, 5.0), 3.0); // not lowered
        assert_eq!(g.load(0), 3.0);
        assert_eq!(g.fetch_min(0, 1.0), 3.0);
        assert_eq!(g.load(0), 1.0);
    }

    #[test]
    fn int_min_max_work() {
        let mut buf = vec![10u32; 1];
        let g = GlobalMem::new(&mut buf);
        assert_eq!(g.fetch_min(0, 7), 10);
        assert_eq!(g.fetch_max(0, 9), 7);
        assert_eq!(g.load(0), 9);
    }

    #[test]
    fn cas_succeeds_only_on_expected_value() {
        let mut buf = vec![5i32; 1];
        let g = GlobalMem::new(&mut buf);
        assert_eq!(g.cas(0, 4, 9), 5); // mismatch: unchanged
        assert_eq!(g.load(0), 5);
        assert_eq!(g.cas(0, 5, 9), 5); // match: swapped
        assert_eq!(g.load(0), 9);
    }

    #[test]
    fn concurrent_fetch_add_is_exact() {
        let mut buf = vec![0.0f32; 1];
        let g = GlobalMem::new(&mut buf);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(move || {
                    for _ in 0..1000 {
                        g.fetch_add(0, 1.0);
                    }
                });
            }
        });
        assert_eq!(g.load(0), 8000.0);
    }

    #[test]
    fn concurrent_fetch_min_finds_global_minimum() {
        let mut buf = vec![u32::MAX; 1];
        let g = GlobalMem::new(&mut buf);
        std::thread::scope(|s| {
            for t in 0..8u32 {
                s.spawn(move || {
                    for i in 0..1000u32 {
                        g.fetch_min(0, 10_000 + t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(g.load(0), 10_000);
    }

    #[test]
    fn negative_float_min() {
        let mut buf = vec![0.0f64; 1];
        let g = GlobalMem::new(&mut buf);
        g.fetch_min(0, -2.5);
        assert_eq!(g.load(0), -2.5);
    }
}
