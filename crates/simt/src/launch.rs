//! Kernel launching: configuration, the block-kernel trait, and block
//! execution on the active host backend.
//!
//! Blocks execute functionally — in ascending block order on the calling
//! thread under [`HostBackend::Sequential`](crate::host::HostBackend)
//! (the default), or on a pool of worker threads under
//! `HostBackend::Parallel` — and each block produces a [`BlockCost`] the
//! device timing model turns into a [`LaunchReport`]. Either way the
//! launch is fully deterministic: the parallel executor merges costs and
//! deferred float atomics back in block order (see [`crate::host`]), so
//! results and reports are bitwise identical at any thread count.

use crate::block::{BlockCost, BlockCtx};
use crate::cost::CostModel;
use crate::error::{LaunchError, Result};
use crate::group::GroupCtx;
use crate::lane::LaneCtx;
use crate::occupancy::Occupancy;
use crate::report::LaunchReport;
use crate::scheduler::{device_time_traced, TraceCtx};
use crate::spec::GpuSpec;
use trace::{KernelId, TraceEvent};

/// Launch geometry: 1-D grid of 1-D blocks plus declared shared memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Number of blocks.
    pub grid_dim: u32,
    /// Threads per block.
    pub block_dim: u32,
    /// Dynamic shared memory declared per block, in bytes.
    pub shared_bytes: u32,
}

impl LaunchConfig {
    /// A grid of `grid_dim` blocks of `block_dim` threads.
    pub fn new(grid_dim: u32, block_dim: u32) -> Self {
        Self {
            grid_dim,
            block_dim,
            shared_bytes: 0,
        }
    }

    /// Enough blocks of `block_dim` threads to cover `total_threads`
    /// (the classic `(n + b - 1) / b` launch).
    pub fn over_threads(total_threads: u64, block_dim: u32) -> Self {
        let grid = total_threads.div_ceil(u64::from(block_dim.max(1)));
        Self::new(grid.min(u64::from(u32::MAX)) as u32, block_dim)
    }

    /// Declare dynamic shared memory per block.
    pub fn with_shared(mut self, bytes: u32) -> Self {
        self.shared_bytes = bytes;
        self
    }

    /// Total threads in the launch.
    pub fn grid_size(&self) -> u64 {
        u64::from(self.grid_dim) * u64::from(self.block_dim)
    }
}

/// A kernel expressed at block granularity.
pub trait BlockKernel: Sync {
    /// Execute one block.
    fn run(&self, block: &mut BlockCtx<'_>);
}

impl<F: Fn(&mut BlockCtx<'_>) + Sync> BlockKernel for F {
    fn run(&self, block: &mut BlockCtx<'_>) {
        self(block)
    }
}

pub(crate) fn validate(spec: &GpuSpec, cfg: &LaunchConfig) -> Result<Occupancy> {
    if cfg.grid_dim == 0 || cfg.block_dim == 0 {
        return Err(LaunchError::EmptyLaunch);
    }
    Occupancy::compute(spec, cfg.block_dim, cfg.shared_bytes)
}

/// Launch a block kernel with an explicit cost model.
///
/// # Errors
///
/// On `Err`, the contents of any buffer the kernel writes are
/// **unspecified under every host backend**: the sequential loop stops
/// at the failing block, while the parallel executor may have run
/// blocks after the failing index (live integer atomics applied) and
/// drops deferred float adds. Callers must discard, not read, kernel
/// output after an error.
pub fn launch_with_model<K: BlockKernel>(
    spec: &GpuSpec,
    model: &CostModel,
    cfg: LaunchConfig,
    kernel: &K,
) -> Result<LaunchReport> {
    let occ = validate(spec, &cfg)?;
    // One TLS read per launch; when no sink is scoped in, the launch runs
    // the exact untraced path (stats off, `device_time` math unchanged).
    let scoped_sink = crate::tracing::current();
    let t0 = std::time::Instant::now();
    let blocks = run_blocks(spec, model, &cfg, kernel, scoped_sink.is_some())?;
    let host_wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let timing = match &scoped_sink {
        None => device_time_traced(spec, model, &blocks, &occ, None),
        Some((sink, label)) => {
            let ctx = TraceCtx {
                sink: sink.as_ref(),
                kernel: KernelId::next(),
                device: 0,
            };
            let timing = device_time_traced(spec, model, &blocks, &occ, Some(&ctx));
            sink.event(&TraceEvent::Kernel {
                id: ctx.kernel,
                name: label,
                device: 0,
                stream: 0,
                start_ms: 0.0,
                end_ms: timing.elapsed_ms,
                grid_dim: cfg.grid_dim,
                block_dim: cfg.block_dim,
            });
            timing
        }
    };
    let mem = blocks
        .iter()
        .fold(crate::cost::MemSummary::default(), |acc, b| {
            acc.merged(b.mem)
        });
    Ok(LaunchReport {
        grid_dim: cfg.grid_dim,
        block_dim: cfg.block_dim,
        shared_bytes: cfg.shared_bytes,
        occupancy: occ,
        timing,
        mem,
        host_wall_ms,
    })
}

/// Launch a block kernel with the standard cost model.
///
/// On `Err`, buffer contents are unspecified under any host backend —
/// see [`launch_with_model`]'s error docs.
pub fn launch<K: BlockKernel>(spec: &GpuSpec, cfg: LaunchConfig, kernel: &K) -> Result<LaunchReport> {
    launch_with_model(spec, &CostModel::standard(), cfg, kernel)
}

/// Launch a per-thread kernel (no barriers, no shared memory): `f` runs
/// once per thread, exactly like a plain CUDA `__global__` function body.
pub fn launch_threads<F>(spec: &GpuSpec, cfg: LaunchConfig, f: F) -> Result<LaunchReport>
where
    F: Fn(&LaneCtx<'_>) + Sync,
{
    launch_threads_with_model(spec, &CostModel::standard(), cfg, f)
}

/// [`launch_threads`] with an explicit cost model.
pub fn launch_threads_with_model<F>(
    spec: &GpuSpec,
    model: &CostModel,
    cfg: LaunchConfig,
    f: F,
) -> Result<LaunchReport>
where
    F: Fn(&LaneCtx<'_>) + Sync,
{
    launch_with_model(spec, model, cfg, &|block: &mut BlockCtx<'_>| {
        block.for_each_thread(|lane| f(lane));
    })
}

/// Launch a cooperative kernel partitioned into groups of `group_size`
/// threads: `f` runs once per group.
pub fn launch_groups<F>(
    spec: &GpuSpec,
    cfg: LaunchConfig,
    group_size: u32,
    f: F,
) -> Result<LaunchReport>
where
    F: Fn(&mut GroupCtx<'_>) + Sync,
{
    launch_groups_with_model(spec, &CostModel::standard(), cfg, group_size, f)
}

/// [`launch_groups`] with an explicit cost model.
pub fn launch_groups_with_model<F>(
    spec: &GpuSpec,
    model: &CostModel,
    cfg: LaunchConfig,
    group_size: u32,
    f: F,
) -> Result<LaunchReport>
where
    F: Fn(&mut GroupCtx<'_>) + Sync,
{
    launch_with_model(spec, model, cfg, &|block: &mut BlockCtx<'_>| {
        block.for_each_group(group_size, |g| f(g));
    })
}

/// Execute all blocks on the active [host backend](crate::host).
///
/// Sequential (the default) runs blocks in ascending index order on the
/// calling thread; `Parallel { threads }` hands the grid to the
/// [`HostExecutor`](crate::host), whose deterministic merge makes the
/// two paths bitwise identical.
///
/// On `Err`, the set of blocks that ran — and therefore every buffer
/// the kernel writes — is backend-dependent and unspecified; callers
/// must not read kernel output after an error.
pub(crate) fn run_blocks<K: BlockKernel>(
    spec: &GpuSpec,
    model: &CostModel,
    cfg: &LaunchConfig,
    kernel: &K,
    stats: bool,
) -> Result<Vec<BlockCost>> {
    let n = cfg.grid_dim;
    let threads = crate::host::current().threads().min(n as usize).max(1);
    if threads == 1 {
        let mut out = Vec::with_capacity(n as usize);
        for b in 0..n {
            let mut ctx =
                BlockCtx::with_stats(b, cfg.block_dim, n, cfg.shared_bytes, spec, model, stats);
            kernel.run(&mut ctx);
            out.push(ctx.finish()?);
        }
        return Ok(out);
    }
    crate::host::HostExecutor::new(threads).run(n, |b| {
        let mut ctx = BlockCtx::with_stats(b, cfg.block_dim, n, cfg.shared_bytes, spec, model, stats);
        kernel.run(&mut ctx);
        ctx.finish()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::GlobalMem;

    #[test]
    fn over_threads_rounds_grid_up() {
        let c = LaunchConfig::over_threads(1000, 256);
        assert_eq!(c.grid_dim, 4);
        assert_eq!(c.grid_size(), 1024);
        let c = LaunchConfig::over_threads(1024, 256);
        assert_eq!(c.grid_dim, 4);
    }

    #[test]
    fn empty_launch_is_rejected() {
        let spec = GpuSpec::test_tiny();
        let r = launch_threads(&spec, LaunchConfig::new(0, 32), |_| {});
        assert!(matches!(r, Err(LaunchError::EmptyLaunch)));
    }

    #[test]
    fn every_thread_runs_exactly_once() {
        let spec = GpuSpec::test_tiny();
        let n = 10_000usize;
        let mut hits = vec![0u32; n];
        {
            let g = GlobalMem::new(&mut hits);
            launch_threads(&spec, LaunchConfig::over_threads(n as u64, 64), |t| {
                let gid = t.global_thread_id() as usize;
                if gid < g.len() {
                    g.fetch_add(gid, 1);
                }
            })
            .unwrap();
        }
        assert!(hits.iter().all(|&h| h == 1));
    }

    #[test]
    fn grid_stride_loop_covers_large_domain() {
        let spec = GpuSpec::test_tiny();
        let n = 100_000usize;
        let mut out = vec![0u64; n];
        {
            let g = GlobalMem::new(&mut out);
            launch_threads(&spec, LaunchConfig::new(8, 64), |t| {
                let mut i = t.global_thread_id();
                while (i as usize) < g.len() {
                    g.store(i as usize, i * 2);
                    i += t.grid_size();
                }
            })
            .unwrap();
        }
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u64 * 2));
    }

    #[test]
    fn group_launch_runs_each_group() {
        let spec = GpuSpec::test_tiny();
        let mut out = vec![0u64; 8]; // 2 blocks * 4 groups? (32/8=4 groups/block)
        {
            let g = GlobalMem::new(&mut out);
            launch_groups(&spec, LaunchConfig::new(2, 32), 8, |grp| {
                let id = grp.global_group_id() as usize;
                let ones = grp.phase(|_| 1u64);
                let total = grp.reduce_sum_u64(&ones);
                g.store(id, total);
            })
            .unwrap();
        }
        assert_eq!(out, vec![8; 8]);
    }

    #[test]
    fn divergent_kernel_costs_more_than_uniform_for_same_total_work() {
        let spec = GpuSpec::v100();
        let cfg = LaunchConfig::new(80, 256);
        // Uniform: every thread charges 100.
        let uniform = launch_threads(&spec, cfg, |t| t.charge(100.0)).unwrap();
        // Divergent: one lane per warp charges 3200, the rest 0 (same
        // total work per warp).
        let divergent = launch_threads(&spec, cfg, |t| {
            if t.lane_id() == 0 {
                t.charge(3200.0);
            }
        })
        .unwrap();
        assert!(
            divergent.timing.compute_ms > uniform.timing.compute_ms * 5.0,
            "divergent {} vs uniform {}",
            divergent.timing.compute_ms,
            uniform.timing.compute_ms
        );
    }

    #[test]
    fn report_reflects_memory_traffic() {
        let spec = GpuSpec::v100();
        let r = launch_threads(&spec, LaunchConfig::new(1, 32), |t| {
            t.read_bytes(1000);
        })
        .unwrap();
        assert_eq!(r.mem.read_bytes, 32_000);
    }

    #[test]
    fn shared_overflow_propagates_from_parallel_executor() {
        let spec = GpuSpec::test_tiny();
        let cfg = LaunchConfig::new(8, 8).with_shared(16);
        let overflow = |b: &mut BlockCtx<'_>| {
            let _ = b.alloc_shared::<u64>(100);
        };
        let r = launch(&spec, cfg, &overflow);
        assert!(matches!(r, Err(LaunchError::SharedMemOverflow { .. })));
        // Same error from the parallel backend.
        let r = crate::host::scoped(crate::host::HostBackend::Parallel { threads: 4 }, || {
            launch(&spec, cfg, &overflow)
        });
        assert!(matches!(r, Err(LaunchError::SharedMemOverflow { .. })));
    }

    #[test]
    fn launch_overhead_is_included() {
        let spec = GpuSpec::v100();
        let r = launch_threads(&spec, LaunchConfig::new(1, 32), |_| {}).unwrap();
        assert!(r.elapsed_ms() >= spec.launch_overhead_us * 1e-3);
    }

    #[test]
    fn single_thread_launch_works() {
        let spec = GpuSpec::test_tiny();
        let mut out = vec![0u32; 1];
        {
            let g = GlobalMem::new(&mut out);
            let r = launch_threads(&spec, LaunchConfig::new(1, 1), |t| {
                assert_eq!(t.global_thread_id(), 0);
                assert_eq!(t.grid_size(), 1);
                g.store(0, 7);
            })
            .unwrap();
            assert_eq!(r.occupancy.resident_warps, spec.max_blocks_per_sm);
        }
        assert_eq!(out[0], 7);
    }

    #[test]
    fn block_too_large_is_rejected_before_execution() {
        let spec = GpuSpec::test_tiny(); // max 256 threads/block
        let r = launch_threads(&spec, LaunchConfig::new(1, 512), |_| {
            panic!("must not execute")
        });
        assert!(matches!(r, Err(LaunchError::BlockTooLarge { .. })));
    }

    #[test]
    fn declared_shared_beyond_block_limit_is_rejected() {
        let spec = GpuSpec::test_tiny(); // 8 KiB per block
        let r = launch(
            &spec,
            LaunchConfig::new(1, 8).with_shared(16 * 1024),
            &|_: &mut BlockCtx<'_>| {},
        );
        assert!(matches!(r, Err(LaunchError::SharedMemTooLarge { .. })));
    }

    #[test]
    fn bad_group_size_surfaces_from_group_launch() {
        let spec = GpuSpec::test_tiny();
        let r = launch_groups(&spec, LaunchConfig::new(1, 16), 5, |_| {});
        assert!(matches!(r, Err(LaunchError::BadGroupSize { .. })));
    }

    #[test]
    fn large_grid_executes_every_block_once() {
        let spec = GpuSpec::test_tiny();
        let n_blocks = 10_000u32;
        for backend in [
            crate::host::HostBackend::Sequential,
            crate::host::HostBackend::Parallel { threads: 4 },
        ] {
            let mut hits = vec![0u32; n_blocks as usize];
            {
                let g = GlobalMem::new(&mut hits);
                crate::host::scoped(backend, || {
                    launch(&spec, LaunchConfig::new(n_blocks, 8), &|b: &mut BlockCtx<'_>| {
                        let idx = b.block_idx() as usize;
                        b.for_each_thread(|t| {
                            if t.thread_idx() == 0 {
                                g.fetch_add(idx, 1);
                            }
                        });
                    })
                })
                .unwrap();
            }
            assert!(hits.iter().all(|&h| h == 1), "backend {backend}");
        }
    }

    #[test]
    fn report_timing_fields_are_consistent() {
        let spec = GpuSpec::v100();
        let r = launch_threads(&spec, LaunchConfig::new(100, 256), |t| {
            t.charge(50.0);
            t.read_bytes(64);
        })
        .unwrap();
        let t = &r.timing;
        assert!(t.elapsed_ms >= t.compute_ms.max(t.memory_ms));
        assert!((t.elapsed_ms - (t.compute_ms.max(t.memory_ms) + t.overhead_ms)).abs() < 1e-12);
        assert!(t.sm_utilization > 0.0 && t.sm_utilization <= 1.0 + 1e-9);
        assert!(t.total_units > 0.0);
        assert_eq!(r.mem.read_bytes, 100 * 256 * 64);
    }
}
