//! Device-level timing: dispatching blocks onto SMs and computing the
//! launch makespan.
//!
//! The GPU's gigathread engine dispatches blocks to SMs as residency slots
//! free up — effectively a greedy least-loaded assignment. We model each SM
//! as a server with issue throughput `issue_width_per_sm` (scaled down when
//! occupancy is too low to hide latency), and charge each SM
//! `max(throughput load, longest single warp)`: a stream of balanced blocks
//! is throughput-bound, while one monstrous warp (the hub row of a
//! power-law matrix under a thread-mapped schedule) becomes the critical
//! path no amount of oversubscription can hide. The device compute time is
//! the slowest SM; the launch time is the max of compute and the memory
//! roofline, plus fixed launch overhead.

use crate::block::BlockCost;
use crate::cost::{CostModel, MemSummary};
use crate::occupancy::Occupancy;
use crate::report::{Boundedness, TimingBreakdown};
use crate::spec::GpuSpec;
use trace::{KernelId, TraceEvent, TraceSink};

/// Where a traced dispatch should send its per-block records.
///
/// Carries the identity that block/warp events need but the timing model
/// itself doesn't: which kernel this dispatch belongs to and on which
/// device it runs.
#[derive(Debug, Clone, Copy)]
pub struct TraceCtx<'a> {
    /// The sink receiving events.
    pub sink: &'a dyn TraceSink,
    /// Kernel span these blocks belong to.
    pub kernel: KernelId,
    /// Device index (0 for single-device launches).
    pub device: u32,
}

/// Compute the timing breakdown for a set of executed blocks.
pub fn device_time(
    spec: &GpuSpec,
    model: &CostModel,
    blocks: &[BlockCost],
    occ: &Occupancy,
) -> TimingBreakdown {
    device_time_traced(spec, model, blocks, occ, None)
}

/// [`device_time`], optionally emitting per-block dispatch spans and
/// per-warp divergence samples to `trace`.
///
/// The timing math is untouched by tracing — the sink only observes the
/// greedy dispatcher's intermediate state (which SM each block lands on
/// and the SM's queue depth before/after), so traced and untraced calls
/// return identical breakdowns.
pub fn device_time_traced(
    spec: &GpuSpec,
    model: &CostModel,
    blocks: &[BlockCost],
    occ: &Occupancy,
    trace: Option<&TraceCtx<'_>>,
) -> TimingBreakdown {
    let hide = (f64::from(occ.resident_warps) / model.latency_hiding_warps).min(1.0);
    let eff_issue = (f64::from(spec.issue_width_per_sm) * hide).max(1e-9);

    let num_sms = spec.num_sms as usize;
    let mut load = vec![0.0f64; num_sms]; // cycles of queued throughput work
    let mut critical = vec![0.0f64; num_sms]; // longest single warp seen
    let mut mem = MemSummary::default();
    let mut total_units = 0.0;
    let cycles_to_ms = 1.0 / (spec.clock_ghz * 1e9) * 1e3;
    // A thread-scoped fault plan (`fault::scoped`) degrades individual
    // SMs' issue throughput. Timing-only: results were computed before
    // this function runs. Without a degrading plan nothing is even
    // touched, keeping the healthy path bitwise identical.
    let fault_mults: Option<Vec<f64>> = crate::fault::current()
        .filter(|p| p.sm_degrade_prob > 0.0)
        .map(|p| (0..num_sms).map(|i| p.sm_multiplier(i as u32)).collect());

    for (bi, b) in blocks.iter().enumerate() {
        // Greedy: dispatch to the SM that currently finishes earliest.
        // Ties break to the *lowest* SM index — the strict `<` keeps the
        // first minimum the fold sees — so the SM assignment is a pure
        // function of the block sequence. The parallel host backend
        // relies on this: merging `BlockCost`s back in block order is
        // sufficient for bitwise-identical timing, with no hidden
        // dependence on comparison order (pinned by
        // `ties_break_to_the_lowest_sm_index`).
        let (sm, _) = load
            .iter()
            .enumerate()
            .fold((0usize, f64::INFINITY), |(bi, bv), (i, &v)| {
                if v < bv {
                    (i, v)
                } else {
                    (bi, bv)
                }
            });
        let units = b.total_units();
        total_units += units;
        let start = load[sm];
        let m = fault_mults.as_ref().map_or(1.0, |v| v[sm]);
        load[sm] += units / eff_issue / m;
        critical[sm] = critical[sm].max(b.critical_warp() / m);
        mem = mem.merged(b.mem);
        if let Some(t) = trace {
            t.sink.event(&TraceEvent::Block {
                kernel: t.kernel,
                device: t.device,
                block: bi as u32,
                sm: sm as u32,
                start_ms: start * cycles_to_ms,
                end_ms: load[sm] * cycles_to_ms,
            });
            for (w, (&cost, &active)) in b.warp_costs.iter().zip(&b.warp_active).enumerate() {
                let frac = if cost > 0.0 {
                    (active / (f64::from(spec.warp_size) * cost)).clamp(0.0, 1.0)
                } else {
                    1.0
                };
                t.sink.event(&TraceEvent::Warp {
                    kernel: t.kernel,
                    block: bi as u32,
                    warp: w as u32,
                    units: cost,
                    active_frac: frac,
                });
            }
        }
    }

    // An SM's time: its throughput load, plus any critical-path excess —
    // a warp that outlives all co-resident work runs alone, latency
    // exposed, and pays `latency_stall`× for the uncovered portion.
    let sm_cycles: Vec<f64> = load
        .iter()
        .zip(&critical)
        .map(|(&l, &c)| l + (c - l).max(0.0) * model.latency_stall)
        .collect();
    let compute_cycles = sm_cycles.iter().copied().fold(0.0, f64::max);
    let compute_ms = compute_cycles * cycles_to_ms;
    let overhead_ms = spec.launch_overhead_us * 1e-3;
    let busy: f64 = sm_cycles.iter().sum();
    let utilization = if compute_cycles > 0.0 {
        busy / (compute_cycles * num_sms as f64)
    } else {
        0.0
    };
    // Idle SMs issue no loads, so an imbalanced launch cannot saturate the
    // memory system: achieved bandwidth scales with SM busyness. A quarter
    // of the SMs streaming flat-out can still reach peak (memory-level
    // parallelism), and even one busy SM draws ~5% of peak — hence the
    // clamp. This coupling is what makes load imbalance hurt *memory-bound*
    // kernels, the central phenomenon of the paper's evaluation.
    let bw_frac = if mem.total_bytes() == 0 {
        1.0
    } else {
        (utilization * 4.0).clamp(0.05, 1.0)
    };
    let memory_ms = mem.total_bytes() as f64 / (spec.mem_bw_gbs * 1e9 * bw_frac) * 1e3;
    TimingBreakdown {
        compute_ms,
        memory_ms,
        overhead_ms,
        elapsed_ms: compute_ms.max(memory_ms) + overhead_ms,
        bound: if compute_ms >= memory_ms {
            Boundedness::Compute
        } else {
            Boundedness::Memory
        },
        sm_utilization: utilization,
        total_units,
        effective_issue_width: eff_issue,
        sm_times_ms: sm_cycles.iter().map(|&c| c * cycles_to_ms).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn occ(spec: &GpuSpec) -> Occupancy {
        Occupancy::compute(spec, 256, 0).unwrap()
    }

    fn block_of(warps: &[f64]) -> BlockCost {
        BlockCost {
            warp_costs: warps.to_vec(),
            warp_active: Vec::new(),
            mem: MemSummary::default(),
        }
    }

    #[test]
    fn empty_launch_costs_only_overhead() {
        let spec = GpuSpec::v100();
        let t = device_time(&spec, &CostModel::standard(), &[], &occ(&spec));
        assert_eq!(t.compute_ms, 0.0);
        assert!((t.elapsed_ms - spec.launch_overhead_us * 1e-3).abs() < 1e-12);
    }

    #[test]
    fn empty_blocks_produce_empty_sm_timeline_and_zero_units() {
        // Edge case behind every `grid_dim ≥ 1` guard upstream: with no
        // blocks the dispatcher must not touch any SM state.
        let spec = GpuSpec::v100();
        let t = device_time(&spec, &CostModel::standard(), &[], &occ(&spec));
        assert_eq!(t.total_units, 0.0);
        assert_eq!(t.sm_utilization, 0.0);
        assert!(t.sm_times_ms.iter().all(|&ms| ms == 0.0));
        assert_eq!(t.memory_ms, 0.0);
        assert_eq!(t.bound, Boundedness::Compute);
    }

    #[test]
    fn ties_break_to_the_lowest_sm_index() {
        // All SMs start equally loaded (empty), so the first block must
        // land on SM 0; after one identical block per SM, every SM is
        // tied again and the next wave must repeat the 0..num_sms order.
        let spec = GpuSpec::v100();
        let model = CostModel::standard();
        let o = occ(&spec);
        let num_sms = spec.num_sms as usize;
        let blocks: Vec<_> = (0..2 * num_sms).map(|_| block_of(&[100.0; 8])).collect();
        let rec = trace::Recorder::new();
        let ctx = TraceCtx {
            sink: &rec,
            kernel: KernelId::next(),
            device: 0,
        };
        device_time_traced(&spec, &model, &blocks, &o, Some(&ctx));
        let sms: Vec<u32> = rec
            .snapshot()
            .events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Block { sm, .. } => Some(*sm),
                _ => None,
            })
            .collect();
        let want: Vec<u32> = (0..num_sms as u32).chain(0..num_sms as u32).collect();
        assert_eq!(sms, want, "greedy argmin must resolve ties by lowest SM index");
    }

    #[test]
    fn balanced_blocks_spread_across_sms() {
        let spec = GpuSpec::v100();
        let model = CostModel::standard();
        // 160 identical blocks on 80 SMs: each SM gets exactly 2.
        let blocks: Vec<_> = (0..160).map(|_| block_of(&[100.0; 8])).collect();
        let t = device_time(&spec, &model, &blocks, &occ(&spec));
        let expected_cycles = 2.0 * (8.0 * 100.0) / 4.0; // 2 blocks, 8 warps, issue 4
        let expected_ms = expected_cycles / (spec.clock_ghz * 1e9) * 1e3;
        assert!((t.compute_ms - expected_ms).abs() / expected_ms < 1e-9);
        assert!(t.sm_utilization > 0.99);
    }

    #[test]
    fn one_monster_warp_is_the_critical_path() {
        let spec = GpuSpec::v100();
        let model = CostModel::standard();
        let mut blocks: Vec<_> = (0..80).map(|_| block_of(&[10.0; 8])).collect();
        blocks.push(block_of(&[1_000_000.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]));
        let t = device_time(&spec, &model, &blocks, &occ(&spec));
        let expected_ms = 1_000_000.0 / (spec.clock_ghz * 1e9) * 1e3;
        assert!(t.compute_ms >= expected_ms);
        // Utilization collapses: one SM is the long pole.
        assert!(t.sm_utilization < 0.1);
    }

    #[test]
    fn memory_roofline_dominates_when_traffic_is_heavy() {
        let spec = GpuSpec::v100();
        let model = CostModel::standard();
        // 160 balanced blocks → full utilization → peak bandwidth.
        let blocks: Vec<_> = (0..160)
            .map(|_| BlockCost {
                warp_costs: vec![1.0; 8],
                warp_active: Vec::new(),
                mem: MemSummary {
                    read_bytes: 9_000_000_000 / 160, // 10 ms total at 900 GB/s
                    ..Default::default()
                },
            })
            .collect();
        let t = device_time(&spec, &model, &blocks, &occ(&spec));
        assert_eq!(t.bound, Boundedness::Memory);
        assert!((t.memory_ms - 10.0).abs() < 0.1, "memory_ms = {}", t.memory_ms);
        assert!(t.elapsed_ms >= 10.0);
    }

    #[test]
    fn imbalance_degrades_achieved_bandwidth() {
        let spec = GpuSpec::v100();
        let model = CostModel::standard();
        let bytes_total = 9_000_000_000u64;
        let balanced: Vec<_> = (0..160)
            .map(|_| BlockCost {
                warp_costs: vec![100.0; 8],
                warp_active: Vec::new(),
                mem: MemSummary {
                    read_bytes: bytes_total / 160,
                    ..Default::default()
                },
            })
            .collect();
        // Same traffic, but one block does all the compute work → SMs idle.
        let mut skewed = vec![BlockCost {
            warp_costs: vec![1_000_000.0; 8],
            warp_active: Vec::new(),
            mem: MemSummary {
                read_bytes: bytes_total,
                ..Default::default()
            },
        }];
        skewed.extend((0..159).map(|_| BlockCost {
            warp_costs: vec![0.001; 8],
            warp_active: Vec::new(),
            mem: MemSummary::default(),
        }));
        let t_bal = device_time(&spec, &model, &balanced, &occ(&spec));
        let t_skew = device_time(&spec, &model, &skewed, &occ(&spec));
        assert!(
            t_skew.memory_ms > 5.0 * t_bal.memory_ms,
            "skewed {} vs balanced {}",
            t_skew.memory_ms,
            t_bal.memory_ms
        );
    }

    #[test]
    fn low_occupancy_degrades_issue_width() {
        let spec = GpuSpec::v100();
        let model = CostModel::standard();
        // One warp per block, block limit 32 → 32 resident warps ≥ 16: full.
        let full = Occupancy::compute(&spec, 32, 0).unwrap();
        // Shared-mem-hungry: 1 block of 1 warp resident → 1 warp < 16.
        let starved = Occupancy {
            blocks_per_sm: 1,
            resident_warps: 1,
            occupancy_frac: 1.0 / 64.0,
            limited_by: crate::occupancy::OccupancyLimit::SharedMem,
        };
        let blocks: Vec<_> = (0..320).map(|_| block_of(&[64.0])).collect();
        let t_full = device_time(&spec, &model, &blocks, &full);
        let t_starved = device_time(&spec, &model, &blocks, &starved);
        assert!(t_starved.compute_ms > t_full.compute_ms * 2.0);
    }

    #[test]
    fn tracing_does_not_perturb_timing_and_blocks_nest_in_compute() {
        let spec = GpuSpec::v100();
        let model = CostModel::standard();
        let o = occ(&spec);
        let blocks: Vec<_> = (0..100)
            .map(|i| block_of(&[f64::from(i % 7 + 1) * 50.0; 8]))
            .collect();
        let plain = device_time(&spec, &model, &blocks, &o);
        let rec = trace::Recorder::new();
        let ctx = TraceCtx {
            sink: &rec,
            kernel: KernelId::next(),
            device: 0,
        };
        let traced = device_time_traced(&spec, &model, &blocks, &o, Some(&ctx));
        assert_eq!(plain, traced);
        let data = rec.snapshot();
        let spans: Vec<_> = data
            .events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Block { .. }))
            .collect();
        assert_eq!(spans.len(), blocks.len());
        for ev in spans {
            if let TraceEvent::Block { start_ms, end_ms, sm, .. } = ev {
                assert!(*start_ms <= *end_ms);
                assert!(*end_ms <= traced.compute_ms + 1e-12);
                assert!((*sm as usize) < spec.num_sms as usize);
            }
        }
    }

    #[test]
    fn scoped_fault_plan_degrades_timing_deterministically() {
        let spec = GpuSpec::v100();
        let model = CostModel::standard();
        let o = occ(&spec);
        let blocks: Vec<_> = (0..160).map(|_| block_of(&[100.0; 8])).collect();
        let healthy = device_time(&spec, &model, &blocks, &o);
        let plan = crate::fault::FaultPlan::healthy(5).with_degraded_sms(0.5, 0.25, 0.75);
        let degraded = crate::fault::scoped(plan, || device_time(&spec, &model, &blocks, &o));
        assert!(
            degraded.compute_ms > healthy.compute_ms,
            "degraded {} vs healthy {}",
            degraded.compute_ms,
            healthy.compute_ms
        );
        let again = crate::fault::scoped(plan, || device_time(&spec, &model, &blocks, &o));
        assert_eq!(degraded, again, "same plan, bitwise-identical timing");
        let noop = crate::fault::scoped(crate::fault::FaultPlan::healthy(5), || {
            device_time(&spec, &model, &blocks, &o)
        });
        assert_eq!(noop, healthy, "non-degrading plan is bitwise transparent");
    }

    #[test]
    fn oversubscription_beats_single_block_per_sm_shapes() {
        let spec = GpuSpec::v100();
        let model = CostModel::standard();
        let o = occ(&spec);
        // Same total work: 80 uneven blocks vs 800 smaller even blocks.
        let uneven: Vec<_> = (0..80)
            .map(|i| block_of(&[if i == 0 { 8000.0 } else { 80.0 }; 8]))
            .collect();
        let even: Vec<_> = (0..800).map(|_| block_of(&[17.9; 8])).collect();
        let t_uneven = device_time(&spec, &model, &uneven, &o);
        let t_even = device_time(&spec, &model, &even, &o);
        assert!(t_even.compute_ms < t_uneven.compute_ms);
    }
}
