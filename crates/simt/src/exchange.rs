//! Halo-exchange and merge charges for sharded execution — the
//! communication half of the distributed cost model.
//!
//! A sharded SpMV is bulk-synchronous: every shard first fetches the
//! ghost entries of `x` it does not own (the *halo exchange*), all
//! shards compute concurrently, and the aggregator then gathers the
//! partial `y` slices (the *merge*). Both phases ride the same
//! interconnect the multi-GPU model already prices
//! ([`MultiGpuSpec::transfer_ms`]): switched links move every shard's
//! traffic concurrently, so each phase's wall time is bounded by its
//! *largest* single transfer, not the sum — exactly the max/sum shape
//! the intra-device model uses, one more level up.

use crate::multi::MultiGpuSpec;

/// The communication charge of one bulk-synchronous sharded operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExchangeCost {
    /// Ghost-fetch phase: bounded by the largest per-shard halo.
    pub halo_ms: f64,
    /// Result-gather phase: bounded by the largest partial slice.
    pub merge_ms: f64,
}

impl ExchangeCost {
    /// Total communication charge added to the critical path.
    pub fn total_ms(&self) -> f64 {
        self.halo_ms + self.merge_ms
    }

    /// A free exchange (single shard, or nothing to move).
    pub fn zero() -> Self {
        Self {
            halo_ms: 0.0,
            merge_ms: 0.0,
        }
    }
}

/// Price one halo exchange + merge over `spec`'s interconnect.
///
/// `halo_bytes_per_shard` holds each shard's ghost-fetch volume;
/// `merge_bytes` is the largest partial-result slice returned to the
/// aggregator. A single shard (or an empty group) pays nothing: the
/// data never leaves the device pool.
pub fn halo_exchange(
    spec: &MultiGpuSpec,
    halo_bytes_per_shard: &[u64],
    merge_bytes: u64,
) -> ExchangeCost {
    if halo_bytes_per_shard.len() <= 1 {
        return ExchangeCost::zero();
    }
    let max_halo = halo_bytes_per_shard.iter().copied().max().unwrap_or(0);
    ExchangeCost {
        halo_ms: if max_halo == 0 {
            0.0
        } else {
            spec.transfer_ms(max_halo)
        },
        merge_ms: if merge_bytes == 0 {
            0.0
        } else {
            spec.transfer_ms(merge_bytes)
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_shard_pays_nothing() {
        let m = MultiGpuSpec::test_tiny(1);
        let c = halo_exchange(&m, &[1_000_000], 4_000);
        assert_eq!(c.total_ms(), 0.0);
    }

    #[test]
    fn empty_halos_still_pay_the_merge() {
        let m = MultiGpuSpec::test_tiny(4);
        let c = halo_exchange(&m, &[0, 0, 0, 0], 4_000);
        assert_eq!(c.halo_ms, 0.0);
        assert!((c.merge_ms - m.transfer_ms(4_000)).abs() < 1e-12);
    }

    #[test]
    fn halo_phase_is_bounded_by_the_largest_transfer() {
        let m = MultiGpuSpec::dgx_v100(4);
        let c = halo_exchange(&m, &[100, 5_000_000, 200, 300], 400);
        assert!((c.halo_ms - m.transfer_ms(5_000_000)).abs() < 1e-12);
        assert!((c.total_ms() - (c.halo_ms + c.merge_ms)).abs() < 1e-12);
    }

    #[test]
    fn more_ghost_bytes_cost_more() {
        let m = MultiGpuSpec::test_tiny(2);
        let small = halo_exchange(&m, &[1_000, 1_000], 1_000);
        let big = halo_exchange(&m, &[1_000_000, 1_000_000], 1_000);
        assert!(big.halo_ms > small.halo_ms);
        assert_eq!(big.merge_ms, small.merge_ms);
    }
}
