//! Occupancy calculation: how many blocks of a given shape fit on one SM.
//!
//! Mirrors the CUDA occupancy calculator for the three limits that matter
//! to the paper's kernels: resident-warp count, resident-block count, and
//! shared memory. (Register pressure is not modeled; the paper's kernels
//! are memory-bound and never register-limited on V100.)

use crate::error::{LaunchError, Result};
use crate::spec::GpuSpec;

/// What capped the number of resident blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OccupancyLimit {
    /// Limited by `max_warps_per_sm`.
    Warps,
    /// Limited by `max_blocks_per_sm`.
    Blocks,
    /// Limited by shared memory per SM.
    SharedMem,
}

/// Result of the occupancy calculation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Occupancy {
    /// Blocks of this shape resident on one SM.
    pub blocks_per_sm: u32,
    /// Warps resident on one SM (`blocks_per_sm * warps_per_block`).
    pub resident_warps: u32,
    /// Fraction of the SM's maximum warp residency achieved.
    pub occupancy_frac: f64,
    /// The binding constraint.
    pub limited_by: OccupancyLimit,
}

impl Occupancy {
    /// Compute occupancy for a block of `block_dim` threads declaring
    /// `shared_bytes` of shared memory, on `spec`.
    pub fn compute(spec: &GpuSpec, block_dim: u32, shared_bytes: u32) -> Result<Self> {
        if block_dim == 0 {
            return Err(LaunchError::EmptyLaunch);
        }
        if block_dim > spec.max_threads_per_block {
            return Err(LaunchError::BlockTooLarge {
                requested: block_dim,
                limit: spec.max_threads_per_block,
            });
        }
        if shared_bytes > spec.shared_mem_per_block {
            return Err(LaunchError::SharedMemTooLarge {
                requested: shared_bytes,
                limit: spec.shared_mem_per_block,
            });
        }
        let warps_per_block = spec.warps_for(block_dim);
        let by_warps = spec.max_warps_per_sm / warps_per_block;
        let by_blocks = spec.max_blocks_per_sm;
        let by_shared = spec
            .shared_mem_per_sm
            .checked_div(shared_bytes)
            .unwrap_or(u32::MAX);
        let (blocks_per_sm, limited_by) = [
            (by_warps, OccupancyLimit::Warps),
            (by_blocks, OccupancyLimit::Blocks),
            (by_shared, OccupancyLimit::SharedMem),
        ]
        .into_iter()
        .min_by_key(|&(n, _)| n)
        .expect("non-empty candidate list");
        // A launchable block always fits at least once (block_dim and
        // shared_bytes were validated against per-block limits above).
        let blocks_per_sm = blocks_per_sm.max(1);
        let resident_warps = blocks_per_sm * warps_per_block;
        Ok(Self {
            blocks_per_sm,
            resident_warps,
            occupancy_frac: f64::from(resident_warps) / f64::from(spec.max_warps_per_sm),
            limited_by,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_occupancy_for_256_thread_blocks_on_v100() {
        let o = Occupancy::compute(&GpuSpec::v100(), 256, 0).unwrap();
        // 256 threads = 8 warps; 64/8 = 8 blocks; 8*8 = 64 warps = 100%.
        assert_eq!(o.blocks_per_sm, 8);
        assert_eq!(o.resident_warps, 64);
        assert!((o.occupancy_frac - 1.0).abs() < 1e-12);
        assert_eq!(o.limited_by, OccupancyLimit::Warps);
    }

    #[test]
    fn tiny_blocks_hit_the_block_limit() {
        // 32-thread blocks: warp limit would allow 64, block limit is 32.
        let o = Occupancy::compute(&GpuSpec::v100(), 32, 0).unwrap();
        assert_eq!(o.blocks_per_sm, 32);
        assert_eq!(o.limited_by, OccupancyLimit::Blocks);
        assert!((o.occupancy_frac - 0.5).abs() < 1e-12);
    }

    #[test]
    fn shared_memory_limits_occupancy() {
        // 40 KiB per block on V100 (96 KiB/SM): only 2 blocks fit.
        let o = Occupancy::compute(&GpuSpec::v100(), 256, 40 * 1024).unwrap();
        assert_eq!(o.blocks_per_sm, 2);
        assert_eq!(o.limited_by, OccupancyLimit::SharedMem);
    }

    #[test]
    fn oversized_block_rejected() {
        assert!(matches!(
            Occupancy::compute(&GpuSpec::v100(), 2048, 0),
            Err(LaunchError::BlockTooLarge { .. })
        ));
    }

    #[test]
    fn oversized_shared_rejected() {
        assert!(matches!(
            Occupancy::compute(&GpuSpec::v100(), 256, 64 * 1024),
            Err(LaunchError::SharedMemTooLarge { .. })
        ));
    }

    #[test]
    fn zero_block_rejected() {
        assert!(matches!(
            Occupancy::compute(&GpuSpec::v100(), 0, 0),
            Err(LaunchError::EmptyLaunch)
        ));
    }

    #[test]
    fn non_multiple_of_warp_rounds_up() {
        // 100 threads = 4 warps on V100.
        let o = Occupancy::compute(&GpuSpec::v100(), 100, 0).unwrap();
        assert_eq!(o.resident_warps % 4, 0);
    }
}
