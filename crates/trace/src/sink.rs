//! The sink trait: where instrumentation points deliver their events.

use std::sync::Arc;

use crate::event::TraceEvent;

/// A consumer of [`TraceEvent`]s.
///
/// Instrumentation points hold an *optional* sink (`Option<&dyn
/// TraceSink>` or `Option<Arc<dyn TraceSink>>`): when the option is
/// `None` the instrumented code performs a single branch and nothing
/// else — no allocation, no arithmetic, no change to simulated results.
/// When a sink is present, events are delivered synchronously from the
/// (single-threaded) timing-resolution code, so implementations need
/// interior mutability but see no concurrent emission for one device.
/// `Send + Sync` is required so one sink can be shared across a device
/// pool; `Debug` keeps the holders' `#[derive(Debug)]` working.
pub trait TraceSink: std::fmt::Debug + Send + Sync {
    /// Deliver one event. Implementations must treat the event as
    /// read-only observation: sinks can never influence simulation
    /// results or timing.
    fn event(&self, ev: &TraceEvent);
}

/// A sink that discards everything — useful as a stand-in in tests that
/// only exercise the instrumented code path.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn event(&self, _ev: &TraceEvent) {}
}

/// A sink that replicates every event to each of its children in order —
/// lets one instrumented run feed a [`crate::Recorder`] timeline and a
/// telemetry collector at once.
#[derive(Debug, Default)]
pub struct Fanout {
    children: Vec<Arc<dyn TraceSink>>,
}

impl Fanout {
    /// A fanout over the given children.
    pub fn new(children: Vec<Arc<dyn TraceSink>>) -> Self {
        Self { children }
    }
}

impl TraceSink for Fanout {
    fn event(&self, ev: &TraceEvent) {
        for child in &self.children {
            child.event(ev);
        }
    }
}
