//! Chrome Trace Event Format export.
//!
//! Produces the JSON-array flavour of the format — a bare `[...]` of
//! event objects — which `chrome://tracing` and Perfetto both accept.
//! Every object carries the full six-field shape `{name, ph, ts, dur,
//! pid, tid}` (instants and counters set `dur: 0`), plus `cat` and
//! `args` for correlation:
//!
//! * **pid** — the device index for device events, [`RUNTIME_PID`] for
//!   serving-runtime events;
//! * **tid** — the SM id for block spans, [`STREAM_TID_BASE`]` +
//!   stream` for kernel spans and stream ops, the request id for
//!   request rows, 0 for counters;
//! * **ts / dur** — microseconds (simulated milliseconds × 1000).
//!
//! Span nesting is encoded twice: visually (a block's `[ts, ts+dur]`
//! lies inside its kernel's span; a request's dispatch lies inside its
//! request span on the same row) and structurally (`args.kernel`,
//! `args.id` correlate children with parents), so a test can parse the
//! file back and verify containment without relying on track layout.

use crate::event::TraceEvent;
use crate::json::{escape_into, number_into};
use crate::recorder::TraceData;

/// The `pid` under which serving-runtime (host-side) events appear.
pub const RUNTIME_PID: u32 = 1000;

/// Offset added to stream ids to keep stream rows clear of SM rows
/// within a device's process group.
pub const STREAM_TID_BASE: u32 = 10_000;

const MS_TO_US: f64 = 1e3;

struct Obj {
    out: String,
    first: bool,
}

impl Obj {
    fn new() -> Self {
        Self {
            out: String::from("{"),
            first: true,
        }
    }

    fn sep(&mut self) {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
    }

    fn str_field(&mut self, key: &str, v: &str) -> &mut Self {
        self.sep();
        escape_into(&mut self.out, key);
        self.out.push(':');
        escape_into(&mut self.out, v);
        self
    }

    fn num_field(&mut self, key: &str, v: f64) -> &mut Self {
        self.sep();
        escape_into(&mut self.out, key);
        self.out.push(':');
        number_into(&mut self.out, v);
        self
    }

    fn raw_field(&mut self, key: &str, raw: &str) -> &mut Self {
        self.sep();
        escape_into(&mut self.out, key);
        self.out.push(':');
        self.out.push_str(raw);
        self
    }

    fn finish(mut self) -> String {
        self.out.push('}');
        self.out
    }
}

fn args(pairs: &[(&str, f64)]) -> String {
    let mut o = Obj::new();
    for (k, v) in pairs {
        o.num_field(k, *v);
    }
    o.finish()
}

/// Render one event as a Chrome Trace object, or `None` for events that
/// have no timeline representation (per-warp statistics).
fn render(ev: &TraceEvent) -> Option<String> {
    let mut o = Obj::new();
    match *ev {
        TraceEvent::Kernel {
            id,
            name,
            device,
            stream,
            start_ms,
            end_ms,
            grid_dim,
            block_dim,
        } => {
            o.str_field("name", name)
                .str_field("cat", "kernel")
                .str_field("ph", "X")
                .num_field("ts", start_ms * MS_TO_US)
                .num_field("dur", (end_ms - start_ms).max(0.0) * MS_TO_US)
                .num_field("pid", f64::from(device))
                .num_field("tid", f64::from(STREAM_TID_BASE + stream))
                .raw_field(
                    "args",
                    &args(&[
                        ("kernel", id.0 as f64),
                        ("grid_dim", f64::from(grid_dim)),
                        ("block_dim", f64::from(block_dim)),
                    ]),
                );
        }
        TraceEvent::Block {
            kernel,
            device,
            block,
            sm,
            start_ms,
            end_ms,
        } => {
            o.str_field("name", &format!("block {block}"))
                .str_field("cat", "block")
                .str_field("ph", "X")
                .num_field("ts", start_ms * MS_TO_US)
                .num_field("dur", (end_ms - start_ms).max(0.0) * MS_TO_US)
                .num_field("pid", f64::from(device))
                .num_field("tid", f64::from(sm))
                .raw_field(
                    "args",
                    &args(&[("kernel", kernel.0 as f64), ("block", f64::from(block))]),
                );
        }
        TraceEvent::StreamOp {
            device,
            stream,
            op,
            ts_ms,
        } => {
            o.str_field("name", op.name())
                .str_field("cat", "stream")
                .str_field("ph", "i")
                .str_field("s", "t")
                .num_field("ts", ts_ms * MS_TO_US)
                .num_field("dur", 0.0)
                .num_field("pid", f64::from(device))
                .num_field("tid", f64::from(STREAM_TID_BASE + stream));
        }
        TraceEvent::Request { id, phase, ts_ms } => {
            o.str_field("name", phase.name())
                .str_field("cat", "request")
                .str_field("ph", "i")
                .str_field("s", "t")
                .num_field("ts", ts_ms * MS_TO_US)
                .num_field("dur", 0.0)
                .num_field("pid", f64::from(RUNTIME_PID))
                .num_field("tid", id as f64)
                .raw_field("args", &args(&[("id", id as f64)]));
        }
        TraceEvent::RequestSpan {
            id,
            start_ms,
            end_ms,
            device,
        } => {
            o.str_field("name", "request")
                .str_field("cat", "request")
                .str_field("ph", "X")
                .num_field("ts", start_ms * MS_TO_US)
                .num_field("dur", (end_ms - start_ms).max(0.0) * MS_TO_US)
                .num_field("pid", f64::from(RUNTIME_PID))
                .num_field("tid", id as f64)
                .raw_field("args", &args(&[("id", id as f64), ("device", f64::from(device))]));
        }
        TraceEvent::Dispatch {
            id,
            device,
            stream,
            start_ms,
            end_ms,
            batched,
        } => {
            o.str_field("name", "dispatch")
                .str_field("cat", "dispatch")
                .str_field("ph", "X")
                .num_field("ts", start_ms * MS_TO_US)
                .num_field("dur", (end_ms - start_ms).max(0.0) * MS_TO_US)
                .num_field("pid", f64::from(RUNTIME_PID))
                .num_field("tid", id as f64)
                .raw_field(
                    "args",
                    &args(&[
                        ("id", id as f64),
                        ("device", f64::from(device)),
                        ("stream", f64::from(stream)),
                        ("batched", if batched { 1.0 } else { 0.0 }),
                    ]),
                );
        }
        TraceEvent::Counter {
            counter,
            ts_ms,
            value,
        } => {
            o.str_field("name", counter.name())
                .str_field("cat", "counter")
                .str_field("ph", "C")
                .num_field("ts", ts_ms * MS_TO_US)
                .num_field("dur", 0.0)
                .num_field("pid", f64::from(RUNTIME_PID))
                .num_field("tid", 0.0)
                .raw_field("args", &args(&[("value", value)]));
        }
        TraceEvent::Shard {
            shard,
            phase,
            ts_ms,
            value,
        } => {
            o.str_field("name", phase.name())
                .str_field("cat", "shard")
                .str_field("ph", "i")
                .str_field("s", "t")
                .num_field("ts", ts_ms * MS_TO_US)
                .num_field("dur", 0.0)
                .num_field("pid", f64::from(RUNTIME_PID))
                .num_field("tid", f64::from(shard))
                .raw_field("args", &args(&[("value", value)]));
        }
        TraceEvent::Fault {
            device,
            kind,
            ts_ms,
            value,
        } => {
            o.str_field("name", kind.name())
                .str_field("cat", "fault")
                .str_field("ph", "i")
                .str_field("s", "g")
                .num_field("ts", ts_ms * MS_TO_US)
                .num_field("dur", 0.0)
                .num_field("pid", f64::from(device))
                .num_field("tid", 0.0)
                .raw_field("args", &args(&[("value", value)]));
        }
        TraceEvent::Tune {
            kernel,
            schedule,
            phase,
            ts_ms,
            cost_ms,
        } => {
            // Args carry two strings, so the numeric-only `args` helper
            // doesn't apply; build the object with the same escapers.
            let mut a = String::from("{");
            escape_into(&mut a, "kernel");
            a.push(':');
            escape_into(&mut a, kernel);
            a.push(',');
            escape_into(&mut a, "schedule");
            a.push(':');
            escape_into(&mut a, schedule);
            a.push(',');
            escape_into(&mut a, "cost_ms");
            a.push(':');
            number_into(&mut a, cost_ms);
            a.push('}');
            o.str_field("name", phase.name())
                .str_field("cat", "tune")
                .str_field("ph", "i")
                .str_field("s", "t")
                .num_field("ts", ts_ms * MS_TO_US)
                .num_field("dur", 0.0)
                .num_field("pid", f64::from(RUNTIME_PID))
                .num_field("tid", 0.0)
                .raw_field("args", &a);
        }
        TraceEvent::TenantSample {
            tenant,
            ts_ms,
            latency_ms,
            outcome,
        } => {
            o.str_field("name", outcome.name())
                .str_field("cat", "tenant")
                .str_field("ph", "i")
                .str_field("s", "t")
                .num_field("ts", ts_ms * MS_TO_US)
                .num_field("dur", 0.0)
                .num_field("pid", f64::from(RUNTIME_PID))
                .num_field("tid", f64::from(tenant))
                .raw_field(
                    "args",
                    &args(&[("tenant", f64::from(tenant)), ("latency_ms", latency_ms)]),
                );
        }
        TraceEvent::Alert {
            kind,
            tenant,
            window,
            ts_ms,
            value,
            threshold,
        } => {
            o.str_field("name", kind.name())
                .str_field("cat", "alert")
                .str_field("ph", "i")
                .str_field("s", "g")
                .num_field("ts", ts_ms * MS_TO_US)
                .num_field("dur", 0.0)
                .num_field("pid", f64::from(RUNTIME_PID))
                .num_field("tid", f64::from(tenant))
                .raw_field(
                    "args",
                    &args(&[
                        ("window", window as f64),
                        ("value", value),
                        ("threshold", threshold),
                    ]),
                );
        }
        TraceEvent::Warp { .. } => return None,
    }
    Some(o.finish())
}

/// Serialize buffered timeline events as a Chrome Trace Event JSON
/// array, ready for `chrome://tracing` or Perfetto.
pub fn to_chrome_json(data: &TraceData) -> String {
    let mut out = String::with_capacity(data.events.len() * 160 + 2);
    out.push_str("[\n");
    let mut first = true;
    for ev in &data.events {
        if let Some(obj) = render(ev) {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&obj);
        }
    }
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CounterKind, KernelId, RequestPhase};
    use crate::json;
    use crate::recorder::Recorder;
    use crate::sink::TraceSink;

    #[test]
    fn export_is_valid_json_with_the_six_keys() {
        let r = Recorder::new();
        let k = KernelId::next();
        r.event(&TraceEvent::Kernel {
            id: k,
            name: "spmv",
            device: 0,
            stream: 0,
            start_ms: 0.0,
            end_ms: 1.5,
            grid_dim: 8,
            block_dim: 256,
        });
        r.event(&TraceEvent::Block {
            kernel: k,
            device: 0,
            block: 3,
            sm: 1,
            start_ms: 0.25,
            end_ms: 0.75,
        });
        r.event(&TraceEvent::Request {
            id: 42,
            phase: RequestPhase::Enqueue,
            ts_ms: 0.1,
        });
        r.event(&TraceEvent::Counter {
            counter: CounterKind::QueueDepth,
            ts_ms: 0.2,
            value: 3.0,
        });
        let text = to_chrome_json(&r.snapshot());
        let v = json::parse(&text).expect("valid JSON");
        let arr = v.as_arr().expect("array document");
        assert_eq!(arr.len(), 4);
        for obj in arr {
            for key in ["name", "ph", "ts", "dur", "pid", "tid"] {
                assert!(obj.get(key).is_some(), "missing {key} in {obj:?}");
            }
        }
        // Block nests inside its kernel span, correlated by args.kernel.
        let kernel = arr
            .iter()
            .find(|o| o.get("cat").and_then(|c| c.as_str()) == Some("kernel"))
            .unwrap();
        let block = arr
            .iter()
            .find(|o| o.get("cat").and_then(|c| c.as_str()) == Some("block"))
            .unwrap();
        assert_eq!(
            kernel.get("args").unwrap().get("kernel").unwrap().as_num(),
            block.get("args").unwrap().get("kernel").unwrap().as_num(),
        );
        let (kts, kdur) = (
            kernel.get("ts").unwrap().as_num().unwrap(),
            kernel.get("dur").unwrap().as_num().unwrap(),
        );
        let (bts, bdur) = (
            block.get("ts").unwrap().as_num().unwrap(),
            block.get("dur").unwrap().as_num().unwrap(),
        );
        assert!(bts >= kts && bts + bdur <= kts + kdur);
    }

    #[test]
    fn warp_events_are_not_exported() {
        let r = Recorder::new();
        r.event(&TraceEvent::Warp {
            kernel: KernelId(1),
            block: 0,
            warp: 0,
            units: 1.0,
            active_frac: 1.0,
        });
        let text = to_chrome_json(&r.snapshot());
        let v = json::parse(&text).expect("valid JSON");
        assert!(v.as_arr().unwrap().is_empty());
    }

    #[test]
    fn tune_events_export_schedule_and_cost() {
        let r = Recorder::new();
        r.event(&TraceEvent::Tune {
            kernel: "spmv",
            schedule: "group-mapped(16)",
            phase: crate::event::TunePhase::Promote,
            ts_ms: 2.5,
            cost_ms: 0.125,
        });
        let text = to_chrome_json(&r.snapshot());
        let v = json::parse(&text).expect("valid JSON");
        let arr = v.as_arr().unwrap();
        assert_eq!(arr.len(), 1);
        let ev = arr[0].as_obj().unwrap();
        assert_eq!(ev.get("name").unwrap().as_str().unwrap(), "tune_promote");
        assert_eq!(ev.get("cat").unwrap().as_str().unwrap(), "tune");
        let args = ev.get("args").unwrap().as_obj().unwrap();
        assert_eq!(args.get("kernel").unwrap().as_str().unwrap(), "spmv");
        assert_eq!(
            args.get("schedule").unwrap().as_str().unwrap(),
            "group-mapped(16)"
        );
        assert_eq!(args.get("cost_ms").unwrap().as_num().unwrap(), 0.125);
    }
}
