//! Interned `&'static str` labels for trace span names.
//!
//! Every span-name field in [`crate::TraceEvent`] is a `&'static str`:
//! events are `Copy`-cheap, the ring buffer never allocates per event,
//! and exporters compare names by pointer-width equality. Labels that
//! are *derived* at run time (e.g. `"spmv/merge-path"` assembled from a
//! kernel name and a schedule) therefore need a home with `'static`
//! lifetime. [`intern`] provides one: a process-wide registry that leaks
//! each distinct label exactly once and returns the shared reference on
//! every subsequent request.
//!
//! The leak is bounded by the number of *distinct* labels — in practice
//! a handful of `kernel/schedule-family` combinations — so this is the
//! standard string-interning trade, not an unbounded leak.

use std::collections::HashSet;
use std::sync::{Mutex, OnceLock};

static REGISTRY: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();

/// Intern `name`, returning a `&'static str` that compares equal to it.
///
/// The first call for a given string leaks one copy; every later call
/// returns the same reference. Thread-safe.
pub fn intern(name: &str) -> &'static str {
    let registry = REGISTRY.get_or_init(|| Mutex::new(HashSet::new()));
    let mut set = registry.lock().expect("label registry poisoned");
    if let Some(&existing) = set.get(name) {
        return existing;
    }
    let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
    set.insert(leaked);
    leaked
}

#[cfg(test)]
mod tests {
    use super::intern;

    #[test]
    fn interning_is_idempotent_and_pointer_stable() {
        let a = intern("spmv/merge-path");
        let b = intern("spmv/merge-path");
        assert_eq!(a, "spmv/merge-path");
        assert!(std::ptr::eq(a, b), "same label must share one allocation");
        let c = intern("bfs/merge-path");
        assert_eq!(c, "bfs/merge-path");
        assert!(!std::ptr::eq(a, c));
    }

    #[test]
    fn static_inputs_round_trip() {
        assert_eq!(intern("fixed"), "fixed");
    }
}
