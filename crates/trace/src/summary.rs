//! Plain-text profile rendering: a kernel table, divergence / idle-lane
//! / block-duration histograms as ASCII bars, and the top-N
//! long-pole-block report — the terminal-friendly view of the same data
//! the Chrome exporter ships to Perfetto.

use crate::event::TraceEvent;
use crate::recorder::{Histogram, TraceData};

fn bar(count: u64, max: u64, width: usize) -> String {
    if max == 0 {
        return String::new();
    }
    let n = ((count as f64 / max as f64) * width as f64).round() as usize;
    "#".repeat(n.min(width))
}

fn histogram_block(out: &mut String, title: &str, h: &Histogram, unit: &str) {
    out.push_str(&format!(
        "\n{title}: {} samples, mean {:.4}{unit}, max {:.4}{unit}\n",
        h.total,
        h.mean(),
        h.max
    ));
    if h.total == 0 {
        out.push_str("  (empty)\n");
        return;
    }
    let peak = h.counts.iter().copied().max().unwrap_or(0);
    let mut lo = 0.0;
    for (i, &c) in h.counts.iter().enumerate() {
        let label = match h.edges.get(i) {
            Some(&hi) => format!("{lo:>10.4} – {hi:<10.4}"),
            None => format!("{:>10.4} – {:<10}", h.edges.last().copied().unwrap_or(0.0), "inf"),
        };
        if c > 0 {
            out.push_str(&format!("  {label} {c:>8} |{}\n", bar(c, peak, 40)));
        }
        lo = h.edges.get(i).copied().unwrap_or(lo);
    }
}

/// Render the whole profile as human-readable text.
pub fn render(data: &TraceData) -> String {
    let mut out = String::new();

    // Kernel table.
    let kernels: Vec<&TraceEvent> = data.kernels().collect();
    out.push_str(&format!(
        "== trace summary: {} kernels, {} blocks, {} warps, {} buffered events ({} dropped) ==\n",
        kernels.len(),
        data.blocks,
        data.warps,
        data.events.len(),
        data.dropped
    ));
    if !kernels.is_empty() {
        out.push_str(&format!(
            "{:<28} {:>4} {:>7} {:>6} {:>12} {:>12}\n",
            "kernel", "dev", "stream", "grid", "start ms", "dur ms"
        ));
        for ev in &kernels {
            if let TraceEvent::Kernel {
                name,
                device,
                stream,
                start_ms,
                end_ms,
                grid_dim,
                ..
            } = ev
            {
                out.push_str(&format!(
                    "{name:<28} {device:>4} {stream:>7} {grid_dim:>6} {start_ms:>12.5} {:>12.5}\n",
                    end_ms - start_ms
                ));
            }
        }
    }

    histogram_block(
        &mut out,
        "warp lane activity (1.0 = no divergence)",
        &data.divergence,
        "",
    );
    histogram_block(&mut out, "idle-lane equivalents per warp", &data.idle_lanes, " lanes");
    histogram_block(&mut out, "block busy durations", &data.block_durations, " ms");

    // Long poles.
    out.push_str(&format!("\ntop {} long-pole blocks:\n", data.long_poles.len()));
    if data.long_poles.is_empty() {
        out.push_str("  (none recorded)\n");
    } else {
        out.push_str(&format!(
            "  {:<28} {:>8} {:>5} {:>12} {:>12}\n",
            "kernel", "block", "sm", "start ms", "busy ms"
        ));
        for p in &data.long_poles {
            let name = data.kernel_name(p.kernel).unwrap_or("<evicted>");
            out.push_str(&format!(
                "  {:<28} {:>8} {:>5} {:>12.5} {:>12.5}\n",
                name, p.block, p.sm, p.start_ms, p.dur_ms
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::KernelId;
    use crate::recorder::Recorder;
    use crate::sink::TraceSink;

    #[test]
    fn renders_kernels_histograms_and_poles() {
        let r = Recorder::new();
        let k = KernelId::next();
        r.event(&TraceEvent::Kernel {
            id: k,
            name: "spmv/merge-path",
            device: 0,
            stream: 0,
            start_ms: 0.0,
            end_ms: 2.0,
            grid_dim: 4,
            block_dim: 256,
        });
        for b in 0..4 {
            r.event(&TraceEvent::Block {
                kernel: k,
                device: 0,
                block: b,
                sm: b,
                start_ms: 0.0,
                end_ms: 0.5 * f64::from(b + 1),
            });
            r.event(&TraceEvent::Warp {
                kernel: k,
                block: b,
                warp: 0,
                units: 10.0,
                active_frac: 0.5,
            });
        }
        let text = render(&r.snapshot());
        assert!(text.contains("spmv/merge-path"));
        assert!(text.contains("long-pole blocks"));
        assert!(text.contains("warp lane activity"));
        assert!(text.contains("block busy durations"));
    }

    #[test]
    fn empty_trace_renders_without_panic() {
        let r = Recorder::new();
        let text = render(&r.snapshot());
        assert!(text.contains("0 kernels"));
    }
}
