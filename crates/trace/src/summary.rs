//! Plain-text profile rendering: a kernel table, divergence / idle-lane
//! / block-duration histograms as ASCII bars, and the top-N
//! long-pole-block report — the terminal-friendly view of the same data
//! the Chrome exporter ships to Perfetto.

use std::collections::BTreeMap;

use crate::event::{ShardPhase, TraceEvent, TunePhase};
use crate::recorder::{Histogram, TraceData};

fn bar(count: u64, max: u64, width: usize) -> String {
    if max == 0 {
        return String::new();
    }
    let n = ((count as f64 / max as f64) * width as f64).round() as usize;
    "#".repeat(n.min(width))
}

fn histogram_block(out: &mut String, title: &str, h: &Histogram, unit: &str) {
    out.push_str(&format!(
        "\n{title}: {} samples, mean {:.4}{unit}, max {:.4}{unit}\n",
        h.total,
        h.mean(),
        h.max
    ));
    if h.total == 0 {
        out.push_str("  (empty)\n");
        return;
    }
    let peak = h.counts.iter().copied().max().unwrap_or(0);
    let mut lo = 0.0;
    for (i, &c) in h.counts.iter().enumerate() {
        let label = match h.edges.get(i) {
            Some(&hi) => format!("{lo:>10.4} – {hi:<10.4}"),
            None => format!("{:>10.4} – {:<10}", h.edges.last().copied().unwrap_or(0.0), "inf"),
        };
        if c > 0 {
            out.push_str(&format!("  {label} {c:>8} |{}\n", bar(c, peak, 40)));
        }
        lo = h.edges.get(i).copied().unwrap_or(lo);
    }
}

/// Render the whole profile as human-readable text.
pub fn render(data: &TraceData) -> String {
    let mut out = String::new();

    // Kernel table.
    let kernels: Vec<&TraceEvent> = data.kernels().collect();
    out.push_str(&format!(
        "== trace summary: {} kernels, {} blocks, {} warps, {} buffered events ({} dropped) ==\n",
        kernels.len(),
        data.blocks,
        data.warps,
        data.events.len(),
        data.dropped
    ));
    if !kernels.is_empty() {
        out.push_str(&format!(
            "{:<28} {:>4} {:>7} {:>6} {:>12} {:>12}\n",
            "kernel", "dev", "stream", "grid", "start ms", "dur ms"
        ));
        for ev in &kernels {
            if let TraceEvent::Kernel {
                name,
                device,
                stream,
                start_ms,
                end_ms,
                grid_dim,
                ..
            } = ev
            {
                out.push_str(&format!(
                    "{name:<28} {device:>4} {stream:>7} {grid_dim:>6} {start_ms:>12.5} {:>12.5}\n",
                    end_ms - start_ms
                ));
            }
        }
    }

    histogram_block(
        &mut out,
        "warp lane activity (1.0 = no divergence)",
        &data.divergence,
        "",
    );
    histogram_block(&mut out, "idle-lane equivalents per warp", &data.idle_lanes, " lanes");
    histogram_block(&mut out, "block busy durations", &data.block_durations, " ms");

    // Long poles.
    out.push_str(&format!("\ntop {} long-pole blocks:\n", data.long_poles.len()));
    if data.long_poles.is_empty() {
        out.push_str("  (none recorded)\n");
    } else {
        out.push_str(&format!(
            "  {:<28} {:>8} {:>5} {:>12} {:>12}\n",
            "kernel", "block", "sm", "start ms", "busy ms"
        ));
        for p in &data.long_poles {
            let name = data.kernel_name(p.kernel).unwrap_or("<evicted>");
            out.push_str(&format!(
                "  {:<28} {:>8} {:>5} {:>12.5} {:>12.5}\n",
                name, p.block, p.sm, p.start_ms, p.dur_ms
            ));
        }
    }

    render_tune(&mut out, data);
    render_shards(&mut out, data);
    render_faults(&mut out, data);
    render_alerts(&mut out, data);
    out
}

/// Autotuner activity: exploration counts per (kernel, schedule) and the
/// promotion decisions in order.
fn render_tune(out: &mut String, data: &TraceData) {
    let mut explores: BTreeMap<(&str, &str), u64> = BTreeMap::new();
    let mut promotes: Vec<(&str, &str, f64, f64)> = Vec::new();
    for ev in &data.events {
        if let TraceEvent::Tune {
            kernel,
            schedule,
            phase,
            ts_ms,
            cost_ms,
        } = ev
        {
            match phase {
                TunePhase::Explore => *explores.entry((kernel, schedule)).or_insert(0) += 1,
                TunePhase::Promote => promotes.push((kernel, schedule, *ts_ms, *cost_ms)),
            }
        }
    }
    if explores.is_empty() && promotes.is_empty() {
        return;
    }
    out.push_str("\nautotuner activity:\n");
    out.push_str(&format!(
        "  {:<12} {:<24} {:>9}\n",
        "kernel", "schedule", "explores"
    ));
    for ((kernel, schedule), n) in &explores {
        out.push_str(&format!("  {kernel:<12} {schedule:<24} {n:>9}\n"));
    }
    if !promotes.is_empty() {
        out.push_str(&format!(
            "  {:<12} {:<24} {:>12} {:>12}\n",
            "promoted", "schedule", "at ms", "cost ms"
        ));
        for (kernel, schedule, ts, cost) in &promotes {
            out.push_str(&format!(
                "  {kernel:<12} {schedule:<24} {ts:>12.5} {cost:>12.5}\n"
            ));
        }
    }
}

/// Sharded-serving activity: per-shard route counts, communication
/// bytes, and rejects.
fn render_shards(out: &mut String, data: &TraceData) {
    #[derive(Default)]
    struct Row {
        routed: u64,
        halo_bytes: f64,
        merge_bytes: f64,
        rejects: u64,
    }
    let mut rows: BTreeMap<u32, Row> = BTreeMap::new();
    for ev in &data.events {
        if let TraceEvent::Shard {
            shard,
            phase,
            value,
            ..
        } = ev
        {
            let row = rows.entry(*shard).or_default();
            match phase {
                ShardPhase::Route => row.routed += 1,
                ShardPhase::HaloExchange => row.halo_bytes += value,
                ShardPhase::Merge => row.merge_bytes += value,
                ShardPhase::Reject => row.rejects += 1,
            }
        }
    }
    if rows.is_empty() {
        return;
    }
    out.push_str("\nshard activity:\n");
    out.push_str(&format!(
        "  {:<6} {:>8} {:>14} {:>14} {:>8}\n",
        "shard", "routed", "halo bytes", "merge bytes", "rejects"
    ));
    for (shard, row) in &rows {
        out.push_str(&format!(
            "  {shard:<6} {:>8} {:>14.0} {:>14.0} {:>8}\n",
            row.routed, row.halo_bytes, row.merge_bytes, row.rejects
        ));
    }
}

/// Injected-fault counts per device and kind.
fn render_faults(out: &mut String, data: &TraceData) {
    let mut counts: BTreeMap<(u32, &str), u64> = BTreeMap::new();
    for ev in &data.events {
        if let TraceEvent::Fault { device, kind, .. } = ev {
            *counts.entry((*device, kind.name())).or_insert(0) += 1;
        }
    }
    if counts.is_empty() {
        return;
    }
    out.push_str("\ninjected faults:\n");
    for ((device, kind), n) in &counts {
        out.push_str(&format!("  device {device}: {kind} ×{n}\n"));
    }
}

/// SLO alerts raised by the telemetry layer, in emission order.
fn render_alerts(out: &mut String, data: &TraceData) {
    let alerts: Vec<&TraceEvent> = data
        .events
        .iter()
        .filter(|e| matches!(e, TraceEvent::Alert { .. }))
        .collect();
    if alerts.is_empty() {
        return;
    }
    out.push_str(&format!("\nSLO alerts ({}):\n", alerts.len()));
    for ev in alerts {
        if let TraceEvent::Alert {
            kind,
            tenant,
            window,
            value,
            threshold,
            ..
        } = ev
        {
            let scope = if *tenant == u32::MAX {
                String::from("system")
            } else {
                format!("tenant {tenant}")
            };
            out.push_str(&format!(
                "  window {window:>4} {scope:<10} {:<18} value {value:.4} vs threshold {threshold:.4}\n",
                kind.name()
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::KernelId;
    use crate::recorder::Recorder;
    use crate::sink::TraceSink;

    #[test]
    fn renders_kernels_histograms_and_poles() {
        let r = Recorder::new();
        let k = KernelId::next();
        r.event(&TraceEvent::Kernel {
            id: k,
            name: "spmv/merge-path",
            device: 0,
            stream: 0,
            start_ms: 0.0,
            end_ms: 2.0,
            grid_dim: 4,
            block_dim: 256,
        });
        for b in 0..4 {
            r.event(&TraceEvent::Block {
                kernel: k,
                device: 0,
                block: b,
                sm: b,
                start_ms: 0.0,
                end_ms: 0.5 * f64::from(b + 1),
            });
            r.event(&TraceEvent::Warp {
                kernel: k,
                block: b,
                warp: 0,
                units: 10.0,
                active_frac: 0.5,
            });
        }
        let text = render(&r.snapshot());
        assert!(text.contains("spmv/merge-path"));
        assert!(text.contains("long-pole blocks"));
        assert!(text.contains("warp lane activity"));
        assert!(text.contains("block busy durations"));
    }

    #[test]
    fn empty_trace_renders_without_panic() {
        let r = Recorder::new();
        let text = render(&r.snapshot());
        assert!(text.contains("0 kernels"));
        assert!(!text.contains("autotuner activity"));
        assert!(!text.contains("shard activity"));
        assert!(!text.contains("SLO alerts"));
    }

    #[test]
    fn renders_tune_events() {
        let r = Recorder::new();
        r.event(&TraceEvent::Tune {
            kernel: "spmv",
            schedule: "group-mapped(16)",
            phase: crate::event::TunePhase::Explore,
            ts_ms: 1.0,
            cost_ms: 0.5,
        });
        r.event(&TraceEvent::Tune {
            kernel: "spmv",
            schedule: "group-mapped(16)",
            phase: crate::event::TunePhase::Promote,
            ts_ms: 2.0,
            cost_ms: 0.25,
        });
        let text = render(&r.snapshot());
        assert!(text.contains("autotuner activity"));
        assert!(text.contains("group-mapped(16)"));
        assert!(text.contains("promoted"));
    }

    #[test]
    fn renders_shard_events() {
        let r = Recorder::new();
        for (phase, value) in [
            (crate::event::ShardPhase::Route, 3.0),
            (crate::event::ShardPhase::HaloExchange, 4096.0),
            (crate::event::ShardPhase::Merge, 8192.0),
            (crate::event::ShardPhase::Reject, 5.0),
        ] {
            r.event(&TraceEvent::Shard {
                shard: 1,
                phase,
                ts_ms: 0.5,
                value,
            });
        }
        let text = render(&r.snapshot());
        assert!(text.contains("shard activity"));
        assert!(text.contains("4096"));
        assert!(text.contains("8192"));
    }

    #[test]
    fn renders_fault_and_alert_events() {
        let r = Recorder::new();
        r.event(&TraceEvent::Fault {
            device: 2,
            kind: crate::event::FaultKind::Stall,
            ts_ms: 1.0,
            value: 2.0,
        });
        r.event(&TraceEvent::Alert {
            kind: crate::event::AlertKind::QueueGrowth,
            tenant: u32::MAX,
            window: 3,
            ts_ms: 40.0,
            value: 12.0,
            threshold: 4.0,
        });
        r.event(&TraceEvent::Alert {
            kind: crate::event::AlertKind::SloBurnRate,
            tenant: 7,
            window: 3,
            ts_ms: 40.0,
            value: 2.5,
            threshold: 1.0,
        });
        let text = render(&r.snapshot());
        assert!(text.contains("injected faults"));
        assert!(text.contains("stall"));
        assert!(text.contains("SLO alerts (2)"));
        assert!(text.contains("system"));
        assert!(text.contains("tenant 7"));
        assert!(text.contains("slo_burn_rate"));
    }
}
