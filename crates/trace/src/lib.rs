//! # trace — structured tracing for the simulator and serving runtime
//!
//! The simulator (`simt`) and the serving runtime (`runtime`) report
//! *aggregates*: a `TimingBreakdown`, a `RuntimeReport`. This crate is
//! the event-level view underneath those numbers — the simulated
//! analogue of an Nsight timeline: which block ran on which SM for how
//! long, how divergent each warp was, when each request arrived, hit or
//! missed the plan cache, dispatched, and completed.
//!
//! Three layers:
//!
//! * **Events + sink** ([`TraceEvent`], [`TraceSink`]) — small `Copy`
//!   records delivered through an optional handle. Instrumented code
//!   holds `Option<&dyn TraceSink>` (or an `Option<Arc<_>>`): when
//!   `None`, the cost is one branch and results are bitwise identical
//!   to uninstrumented code.
//! * **Recorder** ([`Recorder`]) — the standard sink: a bounded ring
//!   buffer of timeline events plus on-arrival aggregation of per-warp
//!   divergence/idle-lane histograms, a block-duration histogram, and a
//!   top-N long-pole-block table.
//! * **Exporters** ([`chrome::to_chrome_json`], [`summary::render`]) —
//!   Chrome Trace Event Format JSON (open `results/trace_*.json` in
//!   Perfetto or `chrome://tracing`) and a plain-text profile.
//!
//! The crate is dependency-free and knows nothing about `simt` or
//! `runtime`; they depend on it, not the other way around.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod chrome;
pub mod event;
pub mod json;
pub mod label;
pub mod recorder;
pub mod sink;
pub mod summary;

pub use chrome::{to_chrome_json, RUNTIME_PID, STREAM_TID_BASE};
pub use event::{
    AlertKind, CounterKind, FaultKind, KernelId, RequestPhase, ShardPhase, StreamOpKind,
    TenantOutcome, TraceEvent, TunePhase,
};
pub use recorder::{Histogram, LongPole, Recorder, TraceData};
pub use sink::{Fanout, NullSink, TraceSink};
