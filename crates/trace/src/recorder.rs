//! The ring-buffer recorder: the standard [`TraceSink`] implementation.
//!
//! Timeline events (kernel/block spans, stream ops, request lifecycle,
//! counters) land in a bounded ring buffer — when full, the *oldest*
//! events are dropped and counted, so a long run degrades gracefully
//! into "the recent window" instead of unbounded memory. High-volume
//! per-warp statistics are folded into histograms on arrival and never
//! buffered individually; block spans additionally feed a block-duration
//! histogram and a bounded top-N "long pole" table, which is the
//! profiler's answer to "which block was the critical path?".

use std::collections::VecDeque;
use std::sync::Mutex;

use crate::event::{KernelId, TraceEvent};
use crate::sink::TraceSink;

/// A fixed-bin histogram over `f64` samples.
///
/// Bins are defined by their upper edges; samples above the last edge
/// land in a final overflow bin. Linear and logarithmic constructors
/// cover the two uses here (lane-activity fractions and block
/// durations).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Upper edge of each regular bin, ascending.
    pub edges: Vec<f64>,
    /// Counts per bin; `counts.len() == edges.len() + 1` (overflow last).
    pub counts: Vec<u64>,
    /// Total samples recorded.
    pub total: u64,
    /// Sum of all samples (for the mean).
    pub sum: f64,
    /// Largest sample seen (0 when empty).
    pub max: f64,
}

impl Histogram {
    /// `bins` equal-width bins spanning `[lo, hi]`.
    pub fn linear(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins >= 1 && hi > lo, "degenerate histogram");
        let w = (hi - lo) / bins as f64;
        Self::from_edges((1..=bins).map(|i| lo + w * i as f64).collect())
    }

    /// `bins` log-spaced bins spanning `[lo, hi]` (both positive).
    pub fn log(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins >= 1 && hi > lo && lo > 0.0, "degenerate histogram");
        let r = (hi / lo).powf(1.0 / bins as f64);
        Self::from_edges((1..=bins).map(|i| lo * r.powi(i as i32)).collect())
    }

    fn from_edges(edges: Vec<f64>) -> Self {
        let n = edges.len();
        Self {
            edges,
            counts: vec![0; n + 1],
            total: 0,
            sum: 0.0,
            max: 0.0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: f64) {
        let bin = self
            .edges
            .iter()
            .position(|&e| v <= e)
            .unwrap_or(self.edges.len());
        self.counts[bin] += 1;
        self.total += 1;
        self.sum += v;
        if v > self.max {
            self.max = v;
        }
    }

    /// Mean sample (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }
}

/// One of the longest-running blocks seen so far.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LongPole {
    /// The launch the block belonged to.
    pub kernel: KernelId,
    /// Block index within that launch's grid.
    pub block: u32,
    /// SM it ran on.
    pub sm: u32,
    /// Dispatch time.
    pub start_ms: f64,
    /// Busy duration.
    pub dur_ms: f64,
}

/// An immutable snapshot of everything a [`Recorder`] has collected.
#[derive(Debug, Clone)]
pub struct TraceData {
    /// Buffered timeline events, oldest first.
    pub events: Vec<TraceEvent>,
    /// Timeline events dropped because the ring was full.
    pub dropped: u64,
    /// Per-warp lane-activity fractions (1.0 = no divergence).
    pub divergence: Histogram,
    /// Per-warp idle-lane equivalents (`warp_size × (1 − activity)`),
    /// in units of lanes assuming 32-lane warps.
    pub idle_lanes: Histogram,
    /// Block busy durations (ms) — the tail of this distribution is the
    /// launch's load imbalance.
    pub block_durations: Histogram,
    /// The longest blocks, sorted by descending duration.
    pub long_poles: Vec<LongPole>,
    /// Warp records folded into the histograms.
    pub warps: u64,
    /// Block records seen.
    pub blocks: u64,
}

impl TraceData {
    /// Kernel spans in the buffer, in emission order.
    pub fn kernels(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Kernel { .. }))
    }

    /// Look up a buffered kernel span's name by id.
    pub fn kernel_name(&self, id: KernelId) -> Option<&'static str> {
        self.events.iter().find_map(|e| match e {
            TraceEvent::Kernel { id: k, name, .. } if *k == id => Some(*name),
            _ => None,
        })
    }
}

/// Default ring capacity: enough for every experiment in this repo while
/// bounding worst-case memory to a few tens of megabytes.
pub const DEFAULT_EVENT_CAPACITY: usize = 1 << 20;

/// How many long-pole blocks the recorder keeps.
pub const LONG_POLE_CAPACITY: usize = 32;

#[derive(Debug)]
struct Inner {
    events: VecDeque<TraceEvent>,
    dropped: u64,
    divergence: Histogram,
    idle_lanes: Histogram,
    block_durations: Histogram,
    long_poles: Vec<LongPole>,
    warps: u64,
    blocks: u64,
}

/// The standard sink: ring buffer + histograms + long-pole table.
///
/// Interior mutability is a `Mutex` so one recorder can be shared
/// (via `Arc`) across a device pool; emission happens on the
/// single-threaded timing-resolution path, so the lock is uncontended.
#[derive(Debug)]
pub struct Recorder {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// A recorder with [`DEFAULT_EVENT_CAPACITY`].
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// A recorder whose ring holds at most `capacity` timeline events.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner {
                events: VecDeque::new(),
                dropped: 0,
                divergence: Histogram::linear(0.0, 1.0, 10),
                idle_lanes: Histogram::linear(0.0, 32.0, 16),
                block_durations: Histogram::log(1e-7, 1e2, 27),
                long_poles: Vec::new(),
                warps: 0,
                blocks: 0,
            }),
        }
    }

    /// Snapshot everything collected so far.
    pub fn snapshot(&self) -> TraceData {
        let inner = self.inner.lock().expect("recorder poisoned");
        TraceData {
            events: inner.events.iter().copied().collect(),
            dropped: inner.dropped,
            divergence: inner.divergence.clone(),
            idle_lanes: inner.idle_lanes.clone(),
            block_durations: inner.block_durations.clone(),
            long_poles: inner.long_poles.clone(),
            warps: inner.warps,
            blocks: inner.blocks,
        }
    }

    /// Timeline events currently buffered.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("recorder poisoned").events.len()
    }

    /// True if nothing has been buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TraceSink for Recorder {
    fn event(&self, ev: &TraceEvent) {
        let mut inner = self.inner.lock().expect("recorder poisoned");
        match *ev {
            TraceEvent::Warp {
                units, active_frac, ..
            } => {
                // Aggregated only: high-volume, no timeline position.
                let _ = units;
                inner.divergence.record(active_frac.clamp(0.0, 1.0));
                inner
                    .idle_lanes
                    .record(32.0 * (1.0 - active_frac.clamp(0.0, 1.0)));
                inner.warps += 1;
                return;
            }
            TraceEvent::Block {
                kernel,
                block,
                sm,
                start_ms,
                end_ms,
                ..
            } => {
                let dur = (end_ms - start_ms).max(0.0);
                inner.block_durations.record(dur);
                inner.blocks += 1;
                let worst = inner.long_poles.last().map_or(0.0, |p| p.dur_ms);
                if inner.long_poles.len() < LONG_POLE_CAPACITY || dur > worst {
                    inner.long_poles.push(LongPole {
                        kernel,
                        block,
                        sm,
                        start_ms,
                        dur_ms: dur,
                    });
                    inner.long_poles.sort_by(|a, b| {
                        b.dur_ms.partial_cmp(&a.dur_ms).expect("durations are finite")
                    });
                    inner.long_poles.truncate(LONG_POLE_CAPACITY);
                }
            }
            _ => {}
        }
        if inner.events.len() >= self.capacity {
            inner.events.pop_front();
            inner.dropped += 1;
        }
        inner.events.push_back(*ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CounterKind, KernelId};

    fn block(kernel: u64, idx: u32, dur: f64) -> TraceEvent {
        TraceEvent::Block {
            kernel: KernelId(kernel),
            device: 0,
            block: idx,
            sm: idx % 4,
            start_ms: 0.0,
            end_ms: dur,
        }
    }

    #[test]
    fn histogram_bins_and_overflow() {
        let mut h = Histogram::linear(0.0, 1.0, 4);
        for v in [0.1, 0.3, 0.9, 5.0] {
            h.record(v);
        }
        assert_eq!(h.total, 4);
        assert_eq!(h.counts[0], 1); // 0.1 ≤ 0.25
        assert_eq!(h.counts[1], 1); // 0.3 ≤ 0.5
        assert_eq!(h.counts[3], 1); // 0.9 ≤ 1.0
        assert_eq!(*h.counts.last().unwrap(), 1); // 5.0 overflows
        assert_eq!(h.max, 5.0);
        assert!((h.mean() - (0.1 + 0.3 + 0.9 + 5.0) / 4.0).abs() < 1e-12);
    }

    #[test]
    fn log_histogram_spans_decades() {
        let mut h = Histogram::log(1e-3, 1e3, 6);
        h.record(1e-3);
        h.record(1.0);
        h.record(999.0);
        assert_eq!(h.total, 3);
        assert_eq!(h.counts.iter().sum::<u64>(), 3);
        assert_eq!(*h.counts.last().unwrap(), 0, "999 fits under the top edge");
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let r = Recorder::with_capacity(2);
        for i in 0..4u64 {
            r.event(&TraceEvent::Counter {
                counter: CounterKind::QueueDepth,
                ts_ms: i as f64,
                value: i as f64,
            });
        }
        let d = r.snapshot();
        assert_eq!(d.events.len(), 2);
        assert_eq!(d.dropped, 2);
        match d.events[0] {
            TraceEvent::Counter { ts_ms, .. } => assert_eq!(ts_ms, 2.0),
            ref e => panic!("unexpected {e:?}"),
        }
    }

    #[test]
    fn warps_fold_into_histograms_not_the_ring() {
        let r = Recorder::new();
        r.event(&TraceEvent::Warp {
            kernel: KernelId(1),
            block: 0,
            warp: 0,
            units: 10.0,
            active_frac: 0.25,
        });
        let d = r.snapshot();
        assert!(d.events.is_empty());
        assert_eq!(d.warps, 1);
        assert_eq!(d.divergence.total, 1);
        assert!((d.idle_lanes.sum - 24.0).abs() < 1e-12);
    }

    #[test]
    fn long_poles_keep_the_worst_blocks_sorted() {
        let r = Recorder::new();
        for i in 0..100 {
            r.event(&block(7, i, f64::from(i)));
        }
        let d = r.snapshot();
        assert_eq!(d.blocks, 100);
        assert_eq!(d.long_poles.len(), LONG_POLE_CAPACITY);
        assert_eq!(d.long_poles[0].dur_ms, 99.0);
        assert!(d
            .long_poles
            .windows(2)
            .all(|w| w[0].dur_ms >= w[1].dur_ms));
        assert_eq!(d.block_durations.total, 100);
    }
}
