//! The event taxonomy: everything the simulator and the serving runtime
//! can tell an observer about one run.
//!
//! Events are small `Copy` values (kernel names are `&'static str`) so
//! emitting one is a couple of stores — no allocation on the
//! instrumented path. Each event carries *simulated* milliseconds; the
//! Chrome exporter converts to microseconds at export time.

use std::sync::atomic::{AtomicU64, Ordering};

/// Process-unique identifier of one kernel launch, used to correlate
/// [`TraceEvent::Block`]/[`TraceEvent::Warp`] records with their
/// [`TraceEvent::Kernel`] span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct KernelId(pub u64);

static NEXT_KERNEL: AtomicU64 = AtomicU64::new(1);

impl KernelId {
    /// Allocate the next process-unique id.
    pub fn next() -> Self {
        Self(NEXT_KERNEL.fetch_add(1, Ordering::Relaxed))
    }
}

/// Stream-ordering operations on a simulated device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamOpKind {
    /// `DeviceSim::record_event`: a completion marker was recorded.
    RecordEvent,
    /// `DeviceSim::wait_event`: a stream was held for an event.
    WaitEvent,
}

impl StreamOpKind {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            Self::RecordEvent => "record_event",
            Self::WaitEvent => "wait_event",
        }
    }
}

/// Lifecycle milestones of one serving-runtime request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestPhase {
    /// The request arrived at the runtime.
    Enqueue,
    /// The request joined a pending tiny-request batch.
    BatchJoin,
    /// Its matrix's plan was found in the plan cache.
    CacheHit,
    /// Its matrix's plan had to be prepared (and was inserted).
    CacheMiss,
    /// Admission control dropped the request.
    Reject,
    /// A dispatch attempt failed and the request is being retried.
    Retry,
    /// The request was dropped because it could not start before its
    /// deadline.
    DeadlineMiss,
    /// The request's job completed on a device.
    Complete,
}

impl RequestPhase {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            Self::Enqueue => "enqueue",
            Self::BatchJoin => "batch_join",
            Self::CacheHit => "cache_hit",
            Self::CacheMiss => "cache_miss",
            Self::Reject => "reject",
            Self::Retry => "retry",
            Self::DeadlineMiss => "deadline_miss",
            Self::Complete => "complete",
        }
    }
}

/// Kinds of injected hardware faults (see `simt::fault::FaultPlan`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// An SM runs at a reduced throughput multiplier for the whole run.
    SmDegraded,
    /// The device refused new work during a stall window; the dispatch
    /// was pushed past the window's end.
    Stall,
    /// The device died; the dispatch (and any job that would still be
    /// running) was lost.
    DeviceLost,
    /// A kernel launch failed transiently; a retry may succeed.
    TransientLaunch,
}

impl FaultKind {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            Self::SmDegraded => "sm_degraded",
            Self::Stall => "stall",
            Self::DeviceLost => "device_lost",
            Self::TransientLaunch => "transient_launch",
        }
    }
}

/// Autotuner milestones (see the serving runtime's `autotune` module).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TunePhase {
    /// A request was served under an unmeasured candidate schedule to
    /// learn its cost.
    Explore,
    /// The candidate sweep finished and the winner's plan was promoted
    /// into the plan cache.
    Promote,
}

impl TunePhase {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            Self::Explore => "tune_explore",
            Self::Promote => "tune_promote",
        }
    }
}

/// Milestones of one sharded-serving operation (see the `shard` crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardPhase {
    /// A tenant's request was routed to its home shard by the
    /// consistent-hash ring.
    Route,
    /// Ghost entries of the input vector were fetched from peer shards
    /// before a split execution.
    HaloExchange,
    /// Per-shard partial results were concatenated into the global
    /// result.
    Merge,
    /// Global admission dropped the request before routing.
    Reject,
}

impl ShardPhase {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            Self::Route => "shard_route",
            Self::HaloExchange => "halo_exchange",
            Self::Merge => "shard_merge",
            Self::Reject => "shard_reject",
        }
    }
}

/// Named time-series counters sampled by the runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterKind {
    /// Jobs in the bounded in-flight window.
    QueueDepth,
    /// Live entries in the plan cache.
    CacheOccupancy,
    /// Tiny requests parked in the pending batch.
    BatcherOccupancy,
}

impl CounterKind {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            Self::QueueDepth => "queue_depth",
            Self::CacheOccupancy => "cache_occupancy",
            Self::BatcherOccupancy => "batcher_occupancy",
        }
    }
}

/// Terminal outcomes of one request, as charged to its tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantOutcome {
    /// The request completed on a device.
    Served,
    /// Admission control dropped it.
    Rejected,
    /// It could not start before its deadline.
    DeadlineMiss,
    /// Every dispatch attempt failed.
    Failed,
}

impl TenantOutcome {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            Self::Served => "served",
            Self::Rejected => "rejected",
            Self::DeadlineMiss => "deadline_miss",
            Self::Failed => "failed",
        }
    }
}

/// SLO alert categories raised by the telemetry engine's detectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertKind {
    /// A tenant's windowed deadline-miss rate burned its error budget
    /// faster than the policy allows.
    SloBurnRate,
    /// The plan-cache hit rate collapsed below the policy floor.
    CacheHitCollapse,
    /// The in-flight queue's window peak grew past the policy bound.
    QueueGrowth,
    /// Routed load skewed across shards beyond the policy bound.
    ShardImbalance,
}

impl AlertKind {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            Self::SloBurnRate => "slo_burn_rate",
            Self::CacheHitCollapse => "cache_hit_collapse",
            Self::QueueGrowth => "queue_growth",
            Self::ShardImbalance => "shard_imbalance",
        }
    }
}

/// One structured trace record.
///
/// Span events carry `[start_ms, end_ms]` on the simulated clock;
/// instants carry a single `ts_ms`. The producer decides the clock's
/// origin: solo launches start at 0, device-timeline events are
/// absolute, runtime events use the serving clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// One kernel launch resolved on a device timeline.
    Kernel {
        /// Correlation id for this launch's block/warp records.
        id: KernelId,
        /// Human-readable kernel label.
        name: &'static str,
        /// Device (pool index; 0 for solo launches).
        device: u32,
        /// Stream the launch ran on (0 for solo launches).
        stream: u32,
        /// Launch start on the simulated clock.
        start_ms: f64,
        /// Launch end (includes memory roofline and launch overhead).
        end_ms: f64,
        /// Blocks launched.
        grid_dim: u32,
        /// Threads per block.
        block_dim: u32,
    },
    /// One block's residency on one SM.
    Block {
        /// Owning kernel launch.
        kernel: KernelId,
        /// Device the SM belongs to.
        device: u32,
        /// Block index within the grid.
        block: u32,
        /// SM the dispatcher placed it on.
        sm: u32,
        /// Dispatch time.
        start_ms: f64,
        /// Drain time of the block's queued issue work.
        end_ms: f64,
    },
    /// Per-warp cost statistics of one executed block (aggregated into
    /// histograms by the recorder rather than buffered individually).
    Warp {
        /// Owning kernel launch.
        kernel: KernelId,
        /// Block index within the grid.
        block: u32,
        /// Warp index within the block.
        warp: u32,
        /// Work units charged to the warp (its lockstep maximum).
        units: f64,
        /// Mean lane activity relative to the warp's critical lane in
        /// `[0, 1]`; `1.0` means no divergence, small values mean most
        /// lanes idled while one lane worked.
        active_frac: f64,
    },
    /// A stream-ordering operation.
    StreamOp {
        /// Device the stream belongs to.
        device: u32,
        /// The stream.
        stream: u32,
        /// What happened.
        op: StreamOpKind,
        /// When it resolved on the device clock.
        ts_ms: f64,
    },
    /// A request lifecycle milestone.
    Request {
        /// Request id.
        id: u64,
        /// Which milestone.
        phase: RequestPhase,
        /// When it happened on the serving clock.
        ts_ms: f64,
    },
    /// A request's whole lifetime: arrival to completion.
    RequestSpan {
        /// Request id.
        id: u64,
        /// Arrival time.
        start_ms: f64,
        /// Completion time.
        end_ms: f64,
        /// Device that served it.
        device: u32,
    },
    /// A request's device dispatch: job start to job end.
    Dispatch {
        /// Request id.
        id: u64,
        /// Device that ran the job.
        device: u32,
        /// Stream the job ran on.
        stream: u32,
        /// Job start on the device timeline.
        start_ms: f64,
        /// Job end.
        end_ms: f64,
        /// True if the job was a fused batch launch.
        batched: bool,
    },
    /// One sample of a named counter.
    Counter {
        /// Which counter.
        counter: CounterKind,
        /// Sample time.
        ts_ms: f64,
        /// Sample value.
        value: f64,
    },
    /// An autotuner milestone: one exploration serve or one promotion.
    Tune {
        /// Kernel whose schedule space is being tuned (interned label,
        /// e.g. `"spmv"`).
        kernel: &'static str,
        /// The candidate schedule involved (interned `ScheduleKind`
        /// display form, e.g. `"group-mapped(16)"`).
        schedule: &'static str,
        /// Exploration or promotion.
        phase: TunePhase,
        /// When it happened on the producer's clock (serving clock for
        /// runtime serves; 0 for standalone runs).
        ts_ms: f64,
        /// The measured simulated cost in milliseconds: the explored
        /// serve's elapsed time, or the winner's best-known cost at
        /// promotion.
        cost_ms: f64,
    },
    /// A sharded-serving milestone on one shard.
    Shard {
        /// Shard index within the group (the home shard for `Route`,
        /// the bounding shard for `HaloExchange`/`Merge`).
        shard: u32,
        /// Which milestone.
        phase: ShardPhase,
        /// When it happened on the group's serving clock.
        ts_ms: f64,
        /// Phase-specific payload: the tenant id for `Route`/`Reject`,
        /// the ghost bytes moved for `HaloExchange`, and the merged
        /// result bytes for `Merge`.
        value: f64,
    },
    /// One request's terminal outcome, charged to its tenant — the
    /// sample the telemetry layer folds into per-tenant latency
    /// histograms and deadline-miss budgets.
    TenantSample {
        /// Tenant the request belonged to.
        tenant: u32,
        /// When the outcome was decided on the serving clock.
        ts_ms: f64,
        /// Arrival-to-completion latency for `Served`; time spent
        /// waiting before the drop for the other outcomes.
        latency_ms: f64,
        /// How the request ended.
        outcome: TenantOutcome,
    },
    /// A typed SLO alert raised by a telemetry detector over one
    /// complete window.
    Alert {
        /// Which detector fired.
        kind: AlertKind,
        /// Tenant the alert is scoped to ([`u32::MAX`] for
        /// system-wide detectors).
        tenant: u32,
        /// Index of the simulated-time window the detector evaluated.
        window: u64,
        /// Window end on the simulated clock.
        ts_ms: f64,
        /// The observed value (burn rate, hit rate, queue peak, skew).
        value: f64,
        /// The policy threshold the value crossed.
        threshold: f64,
    },
    /// An injected fault fired on a device.
    Fault {
        /// Device the fault hit.
        device: u32,
        /// What kind of fault.
        kind: FaultKind,
        /// When it fired on the device clock.
        ts_ms: f64,
        /// Fault-specific payload: the throughput multiplier for
        /// `SmDegraded` (with the SM id unavailable here, emitted once
        /// per degraded SM), the stall-window end for `Stall`, and the
        /// dispatch's attempted start time otherwise.
        value: f64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_ids_are_unique_and_increasing() {
        let a = KernelId::next();
        let b = KernelId::next();
        assert!(b.0 > a.0);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(RequestPhase::CacheHit.name(), "cache_hit");
        assert_eq!(RequestPhase::Retry.name(), "retry");
        assert_eq!(RequestPhase::DeadlineMiss.name(), "deadline_miss");
        assert_eq!(StreamOpKind::WaitEvent.name(), "wait_event");
        assert_eq!(CounterKind::QueueDepth.name(), "queue_depth");
        assert_eq!(FaultKind::DeviceLost.name(), "device_lost");
        assert_eq!(FaultKind::TransientLaunch.name(), "transient_launch");
        assert_eq!(FaultKind::SmDegraded.name(), "sm_degraded");
        assert_eq!(FaultKind::Stall.name(), "stall");
        assert_eq!(TunePhase::Explore.name(), "tune_explore");
        assert_eq!(TunePhase::Promote.name(), "tune_promote");
        assert_eq!(ShardPhase::Route.name(), "shard_route");
        assert_eq!(ShardPhase::HaloExchange.name(), "halo_exchange");
        assert_eq!(ShardPhase::Merge.name(), "shard_merge");
        assert_eq!(ShardPhase::Reject.name(), "shard_reject");
        assert_eq!(CounterKind::BatcherOccupancy.name(), "batcher_occupancy");
        assert_eq!(TenantOutcome::Served.name(), "served");
        assert_eq!(TenantOutcome::Rejected.name(), "rejected");
        assert_eq!(TenantOutcome::DeadlineMiss.name(), "deadline_miss");
        assert_eq!(TenantOutcome::Failed.name(), "failed");
        assert_eq!(AlertKind::SloBurnRate.name(), "slo_burn_rate");
        assert_eq!(AlertKind::CacheHitCollapse.name(), "cache_hit_collapse");
        assert_eq!(AlertKind::QueueGrowth.name(), "queue_growth");
        assert_eq!(AlertKind::ShardImbalance.name(), "shard_imbalance");
    }
}
