//! A minimal JSON value, parser, and string escaper — just enough to
//! write Chrome Trace Event files and to parse them back in tests.
//!
//! The workspace is std-only, so this is a hand-rolled recursive-descent
//! parser over the JSON subset the exporter emits (and any
//! RFC 8259-conformant document without `\u` surrogate pairs beyond the
//! BMP, which the exporter never produces).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object (key order not preserved).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The object map, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Object field lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj().and_then(|m| m.get(key))
    }
}

/// A parse failure, with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset where it went wrong.
    pub at: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parse one JSON document (rejecting trailing garbage).
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

/// Append `s` to `out` as a JSON string literal (with quotes).
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append a finite `f64` to `out` as a JSON number (non-finite values
/// become `0`, which JSON cannot represent otherwise).
pub fn number_into(out: &mut String, v: f64) {
    if v.is_finite() {
        let mut s = format!("{v}");
        // `{}` on f64 can yield "1e21"-style exponents, which JSON allows,
        // but never "NaN"/"inf" for finite inputs. Integral values print
        // without a dot, which is also valid JSON.
        if s == "-0" {
            s = "0".into();
        }
        out.push_str(&s);
    } else {
        out.push('0');
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            msg: msg.into(),
            at: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("unsupported \\u code point"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_arrays_objects() {
        let v = parse(r#"{"a": [1, 2.5, -3e2], "b": "x\"y", "c": null, "d": true}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2].as_num(), Some(-300.0));
        assert_eq!(v.get("b").unwrap().as_str(), Some("x\"y"));
        assert_eq!(v.get("c"), Some(&Value::Null));
        assert_eq!(v.get("d"), Some(&Value::Bool(true)));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("[1, 2").is_err());
        assert!(parse("{}extra").is_err());
        assert!(parse("nope").is_err());
    }

    #[test]
    fn escape_round_trips() {
        let mut out = String::new();
        escape_into(&mut out, "a\"b\\c\nd\te\u{1}");
        let back = parse(&out).unwrap();
        assert_eq!(back.as_str(), Some("a\"b\\c\nd\te\u{1}"));
    }

    #[test]
    fn numbers_round_trip() {
        for v in [0.0, 1.5, -2.25e-3, 1e21, 123456789.0] {
            let mut s = String::new();
            number_into(&mut s, v);
            assert_eq!(parse(&s).unwrap().as_num(), Some(v), "value {v} via '{s}'");
        }
        let mut s = String::new();
        number_into(&mut s, f64::NAN);
        assert_eq!(parse(&s).unwrap().as_num(), Some(0.0));
    }
}
