//! The `profile` experiment: run a skewed SpMV and a serving workload
//! under tracing and export their timelines.
//!
//! Produces, under the output directory:
//!
//! * `trace_spmv.json` — Chrome Trace Event timeline of one skewed SpMV
//!   under three schedules (open in Perfetto / `chrome://tracing`);
//! * `trace_serve.json` — the serving runtime's timeline: request rows,
//!   device dispatches, kernel/block placement, queue-depth and
//!   plan-cache counters;
//! * `longpoles.csv` — the top-N longest-running blocks across both
//!   traces (`trace,kernel,block,sm,start_ms,busy_ms`), the "where did
//!   the makespan go" report;
//! * `chaos_serve.json` — the chaos scenario: the same serving stack
//!   under a seeded [`simt::FaultPlan`] per device (flaky launches,
//!   degraded SMs, a stall window, a mid-run device kill) plus tight
//!   deadlines and chaos-injected plan failures. Every value in the
//!   file derives from the simulated clock and seeded fault streams, so
//!   two runs of the same build are byte-identical — CI diffs them.
//!
//! The logic lives in the library (rather than the binary) so the root
//! package can re-export a `profile` binary that works from the
//! workspace root, and so tests can drive it against a temp dir.

use std::sync::Arc;

use crate::cli::Cli;
use crate::csv::CsvWriter;
use crate::telemetry::{collector_config, export_snapshot, run_instrumented, serve_requests, serve_matrices};
use loops::schedule::ScheduleKind;
use runtime::{Runtime, RuntimeConfig};
use simt::{FaultPlan, GpuSpec};
use sparse::Csr;
use telemetry::TelemetryCollector;
use trace::{Recorder, TraceData, TraceSink};

/// Requests in the serve trace (the acceptance floor is 200).
pub const SERVE_REQUESTS: usize = crate::telemetry::SERVE_REQUESTS;

/// Paths of everything one [`run`] call wrote.
#[derive(Debug, Clone)]
pub struct ProfileOutputs {
    /// Chrome trace of the skewed SpMV launches.
    pub spmv_json: std::path::PathBuf,
    /// Chrome trace of the serving workload.
    pub serve_json: std::path::PathBuf,
    /// Top-N long-pole-block CSV over both traces.
    pub longpoles_csv: std::path::PathBuf,
    /// Deterministic chaos-scenario report (seeded faults + deadlines).
    pub chaos_json: std::path::PathBuf,
    /// Windowed telemetry time series of the serve run.
    pub telemetry_csv: std::path::PathBuf,
    /// Prometheus snapshot of the serve run.
    pub telemetry_prom: std::path::PathBuf,
    /// Windowed telemetry time series of the chaos run.
    pub chaos_telemetry_csv: std::path::PathBuf,
}

fn skewed_matrix(limit: Option<usize>) -> Csr<f32> {
    // Degree-sorted power law: the hub rows cluster, so a static
    // schedule's long-pole blocks stand out in the trace. `--limit`
    // scales the matrix down for smoke runs.
    let scale = limit.map_or(1.0, |l| (l as f64 / 10.0).clamp(0.05, 1.0));
    let n = (120_000.0 * scale) as usize;
    let nnz = (1_500_000.0 * scale) as usize;
    let p = sparse::gen::powerlaw(n, n, nnz, 1.7, 9);
    let order = sparse::reorder::degree_sort(&p);
    sparse::reorder::permute_rows(&p, &order)
}

fn trace_spmv(cli: &Cli) -> std::io::Result<(std::path::PathBuf, TraceData)> {
    let spec = GpuSpec::v100();
    let a = skewed_matrix(cli.limit);
    let x = sparse::dense::test_vector(a.cols());
    println!(
        "profiling SpMV: degree-sorted power-law, {}x{}, {} nnz (CV {:.2})",
        a.rows(),
        a.cols(),
        a.nnz(),
        sparse::RowStats::of(&a).cv
    );
    let rec = Arc::new(Recorder::new());
    for kind in [
        ScheduleKind::ThreadMapped,
        ScheduleKind::MergePath,
        ScheduleKind::WorkQueue(256),
    ] {
        let label = loops::dispatch::trace_label(loops::dispatch::KernelKind::Spmv, kind);
        let run = simt::tracing::scoped(rec.clone() as Arc<dyn trace::TraceSink>, label, || {
            kernels::spmv(&spec, &a, &x, kind)
        })
        .expect("spmv");
        println!("  {label:<24} {:.5} ms", run.report.elapsed_ms());
    }
    let data = rec.snapshot();
    std::fs::create_dir_all(&cli.out_dir)?;
    let path = std::path::Path::new(&cli.out_dir).join("trace_spmv.json");
    std::fs::write(&path, trace::to_chrome_json(&data))?;
    Ok((path, data))
}

fn trace_serve(
    cli: &Cli,
) -> std::io::Result<(std::path::PathBuf, TraceData, telemetry::TelemetrySnapshot)> {
    // The shared telemetry scenario (see `bench::telemetry`): a matrix
    // mix with both tiny (batchable) and mid-size requests arriving
    // fast enough to queue. The recorder and the telemetry collector
    // both observe the same event stream through a fanout sink.
    let rec = Arc::new(Recorder::new());
    let (out, snap) = run_instrumented(Some(rec.clone() as Arc<dyn TraceSink>));
    println!(
        "profiling serve: {} requests, {} batches, cache hit rate {:.1}%, p99 {:.4} ms",
        out.report.served,
        out.report.batches,
        out.report.cache.hit_rate() * 100.0,
        out.report.latency_p99_ms
    );
    let data = rec.snapshot();
    std::fs::create_dir_all(&cli.out_dir)?;
    let path = std::path::Path::new(&cli.out_dir).join("trace_serve.json");
    std::fs::write(&path, trace::to_chrome_json(&data))?;
    Ok((path, data, snap))
}

/// Run the chaos scenario and write `chaos_serve.json` +
/// `chaos_telemetry.{csv,prom}` under `cli.out_dir`, returning the JSON
/// and CSV paths. Public so tests can regenerate the committed artifacts
/// (e.g. under a different [`simt::HostBackend`]) and byte-compare.
pub fn chaos_serve(cli: &Cli) -> std::io::Result<(std::path::PathBuf, std::path::PathBuf)> {
    // Same matrix mix as the clean serve trace, so the two runs are
    // directly comparable in the counters. (The clean scenario appends
    // two tiny batchable matrices; chaos uses only the mid-size four.)
    let matrices: Vec<Arc<Csr<f32>>> = serve_matrices().into_iter().take(4).collect();
    let requests = serve_requests(&matrices);
    let mut rt = Runtime::new(
        GpuSpec::v100(),
        RuntimeConfig {
            devices: 3,
            keep_results: true,
            deadline_ms: 3.0,
            plan_fail_prob: 0.15,
            ..RuntimeConfig::default()
        },
    );
    // One distinct failure mode per device: transient launch faults,
    // SM degradation plus a stall window, and a mid-run kill.
    rt.set_fault_plan(0, FaultPlan::healthy(0xC0FFEE).with_flaky_launches(0.15));
    rt.set_fault_plan(
        1,
        FaultPlan::healthy(0xBEEF)
            .with_degraded_sms(0.25, 0.4, 0.8)
            .with_stall(0.3, 0.15),
    );
    rt.set_fault_plan(2, FaultPlan::healthy(0xDEAD).with_kill_at(0.5));
    // The chaos run is instrumented too: tight deadlines and fault
    // storms are exactly what the SLO detectors exist for.
    let collector = Arc::new(TelemetryCollector::new(collector_config()));
    rt.set_trace_sink(collector.clone());
    let out = rt.serve(&requests).expect("chaos serve");
    let rep = &out.report;
    assert!(rep.reconciles(), "request accounting must balance");
    println!(
        "chaos serve: {} served / {} submitted, {} retries, {} failovers, {} deadline-missed, {} failed",
        rep.served, rep.submitted, rep.retries, rep.failovers, rep.deadline_missed, rep.failed
    );

    // Fold every served result into one order-independent checksum: the
    // simulator computes results functionally, so this hash is the
    // "faults never corrupt numerics" witness CI byte-compares.
    let mut checksum: u64 = 0;
    for c in &out.completions {
        if let Some(y) = &c.y {
            for v in y {
                checksum = checksum.wrapping_add(u64::from(v.to_bits()));
            }
        }
    }

    let mut j = String::from("{\n");
    j.push_str(&format!("  \"requests\": {},\n", rep.submitted));
    j.push_str(&format!("  \"served\": {},\n", rep.served));
    j.push_str(&format!("  \"rejected\": {},\n", rep.rejected));
    j.push_str(&format!("  \"deadline_missed\": {},\n", rep.deadline_missed));
    j.push_str(&format!("  \"failed\": {},\n", rep.failed));
    j.push_str(&format!("  \"retries\": {},\n", rep.retries));
    j.push_str(&format!("  \"failovers\": {},\n", rep.failovers));
    j.push_str(&format!("  \"plan_fallbacks\": {},\n", rep.plan_fallbacks));
    j.push_str(&format!("  \"device_evictions\": {},\n", rep.device_evictions));
    j.push_str(&format!("  \"batches\": {},\n", rep.batches));
    j.push_str(&format!("  \"cache_hits\": {},\n", rep.cache.hits));
    j.push_str(&format!("  \"cache_misses\": {},\n", rep.cache.misses));
    j.push_str(&format!("  \"latency_p50_ms\": {:.9},\n", rep.latency_p50_ms));
    j.push_str(&format!("  \"latency_p99_ms\": {:.9},\n", rep.latency_p99_ms));
    j.push_str(&format!("  \"makespan_ms\": {:.9},\n", rep.makespan_ms));
    j.push_str(&format!("  \"result_checksum\": {checksum},\n"));
    j.push_str("  \"devices\": [\n");
    for (i, d) in rep.devices.iter().enumerate() {
        let sep = if i + 1 == rep.devices.len() { "" } else { "," };
        j.push_str(&format!(
            "    {{\"device\": {}, \"jobs\": {}, \"transient_launch_failures\": {}, \"stalled_dispatches\": {}, \"lost_dispatches\": {}, \"degraded_sms\": {}}}{sep}\n",
            d.device,
            d.jobs,
            d.faults.transient_launch_failures,
            d.faults.stalled_dispatches,
            d.faults.lost_dispatches,
            d.faults.degraded_sms
        ));
    }
    j.push_str("  ]\n}\n");

    std::fs::create_dir_all(&cli.out_dir)?;
    let path = std::path::Path::new(&cli.out_dir).join("chaos_serve.json");
    std::fs::write(&path, j)?;

    let snap = collector.finish();
    println!(
        "chaos telemetry: {} windows, {} SLO alerts",
        snap.registry.max_window().map_or(0, |w| w + 1),
        snap.alerts.len()
    );
    let tele = export_snapshot(&cli.out_dir, "chaos_telemetry", &snap)?;
    Ok((path, tele.csv))
}

/// Run both traced workloads plus the chaos scenario, write the trace
/// JSONs, the long-pole report, and the chaos report, and print text
/// summaries.
pub fn run(cli: &Cli) -> std::io::Result<ProfileOutputs> {
    let (spmv_json, spmv_data) = trace_spmv(cli)?;
    let (serve_json, serve_data, serve_snap) = trace_serve(cli)?;

    let mut csv = CsvWriter::create(
        &cli.out_dir,
        "longpoles.csv",
        "trace,kernel,block,sm,start_ms,busy_ms",
    )?;
    for (tag, data) in [("spmv", &spmv_data), ("serve", &serve_data)] {
        for p in &data.long_poles {
            let name = data.kernel_name(p.kernel).unwrap_or("<evicted>");
            csv.row(&format!(
                "{tag},{name},{},{},{},{}",
                p.block, p.sm, p.start_ms, p.dur_ms
            ))?;
        }
    }
    let longpoles_csv = csv.finish()?;
    let tele = export_snapshot(&cli.out_dir, "telemetry_serve", &serve_snap)?;
    let (chaos_json, chaos_telemetry_csv) = chaos_serve(cli)?;

    println!("\n---- SpMV trace ----\n{}", trace::summary::render(&spmv_data));
    println!("\n---- serve trace ----\n{}", trace::summary::render(&serve_data));
    println!(
        "\n---- telemetry dashboard ----\n{}",
        telemetry::dashboard::render(&serve_snap)
    );
    println!("wrote {}", spmv_json.display());
    println!("wrote {}", serve_json.display());
    println!("wrote {}", longpoles_csv.display());
    println!("wrote {}", tele.csv.display());
    println!("wrote {}", tele.prom.display());
    println!("wrote {}", chaos_json.display());
    println!("wrote {}", chaos_telemetry_csv.display());
    Ok(ProfileOutputs {
        spmv_json,
        serve_json,
        longpoles_csv,
        chaos_json,
        telemetry_csv: tele.csv,
        telemetry_prom: tele.prom,
        chaos_telemetry_csv,
    })
}
