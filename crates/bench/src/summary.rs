//! Summary statistics printed by the experiment binaries.

/// Geometric mean of strictly positive samples (the paper's headline
/// aggregation for speedups/slowdowns). Returns `NaN` on empty input.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let log_sum: f64 = xs
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "geomean requires positive samples, got {x}");
            x.ln()
        })
        .sum();
    (log_sum / xs.len() as f64).exp()
}

/// Linear-interpolated quantile (`q ∈ [0, 1]`) of a sample.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Fraction of samples satisfying a predicate.
pub fn fraction(xs: &[f64], pred: impl Fn(f64) -> bool) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().filter(|&&x| pred(x)).count() as f64 / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_reciprocals_is_reciprocal() {
        let a = geomean(&[2.0, 8.0]);
        assert!((a - 4.0).abs() < 1e-12);
        let b = geomean(&[0.5, 0.125]);
        assert!((b - 0.25).abs() < 1e-12);
    }

    #[test]
    fn geomean_singleton_and_empty() {
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-12);
        assert!(geomean(&[]).is_nan());
    }

    #[test]
    #[should_panic(expected = "positive samples")]
    fn geomean_rejects_nonpositive() {
        let _ = geomean(&[1.0, 0.0]);
    }

    #[test]
    fn quantiles() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert!((quantile(&xs, 0.5) - 2.5).abs() < 1e-12);
        // Unsorted input is fine.
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert!((quantile(&xs, 0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn fraction_counts() {
        let xs = [0.5, 0.9, 1.0, 2.0];
        assert!((fraction(&xs, |x| x >= 0.9) - 0.75).abs() < 1e-12);
    }
}
