//! The telemetry serve scenario and the perf-regression gate.
//!
//! One deterministic instrumented serving run is shared by three
//! consumers:
//!
//! * the `profile` binary, which exports its windowed time series
//!   (`telemetry_serve.csv`), a Prometheus snapshot
//!   (`telemetry_serve.prom`), and a text dashboard;
//! * the `telemetry_gate` binary, which extracts a small set of
//!   headline metrics from a fresh run and diffs them against the
//!   pinned `results/baseline_metrics.json`;
//! * the root `telemetry` integration tests, which assert the run is
//!   bitwise identical with and without the collector attached.
//!
//! The gate's baseline stores values rounded to [`SIG_DIGITS`]
//! significant digits. A fresh run therefore differs from the baseline
//! only in the rounded-away tail: well inside the default relative
//! tolerance, but *not* equal — so `--tolerance 0` demonstrably fails,
//! which CI uses to prove the gate actually compares numbers.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use runtime::{zipf_workload, Request, Runtime, RuntimeConfig, ServeResult, WorkloadSpec};
use simt::GpuSpec;
use sparse::Csr;
use telemetry::{TelemetryCollector, TelemetryConfig, TelemetrySnapshot};
use trace::TraceSink;

/// Requests in the telemetry serve scenario (same stream as the
/// `profile` serve trace).
pub const SERVE_REQUESTS: usize = 240;

/// Simulated-time window width of the scenario's registry (ms).
pub const WINDOW_MS: f64 = 0.25;

/// Significant digits kept when writing the gate baseline.
pub const SIG_DIGITS: i32 = 6;

/// Default relative tolerance of the gate comparison.
pub const DEFAULT_TOLERANCE: f64 = 0.02;

/// The matrix mix of the serve scenario: four mid-size power-law
/// matrices plus two tiny batchable ones — identical to the `profile`
/// serve trace so the two stay comparable.
pub fn serve_matrices() -> Vec<Arc<Csr<f32>>> {
    let mut matrices: Vec<Arc<Csr<f32>>> = (0..4)
        .map(|i| {
            Arc::new(sparse::gen::powerlaw(
                3_000 + 800 * i,
                3_000 + 800 * i,
                40_000 + 8_000 * i,
                1.6,
                100 + i as u64,
            ))
        })
        .collect();
    matrices.extend((0..2).map(|i| {
        Arc::new(sparse::gen::uniform(64, 64, 500, 200 + i)) as Arc<Csr<f32>>
    }));
    matrices
}

/// The deterministic request stream of the scenario (Zipf tenants,
/// Poisson arrivals, seed 42).
pub fn serve_requests(matrices: &[Arc<Csr<f32>>]) -> Vec<Request> {
    zipf_workload(
        matrices,
        &WorkloadSpec {
            requests: SERVE_REQUESTS,
            zipf_s: 1.1,
            mean_interarrival_ms: 0.004,
            seed: 42,
        },
    )
}

/// The scenario's collector configuration: [`WINDOW_MS`] windows, the
/// default SLO policy, and the V100's SM count for utilization math.
pub fn collector_config() -> TelemetryConfig {
    TelemetryConfig {
        window_ms: WINDOW_MS,
        sms_per_device: GpuSpec::v100().num_sms,
        ..TelemetryConfig::default()
    }
}

fn scenario_runtime() -> Runtime {
    Runtime::new(
        GpuSpec::v100(),
        RuntimeConfig {
            devices: 2,
            ..RuntimeConfig::default()
        },
    )
}

/// Run the scenario **without** any sink attached — the control arm of
/// the bitwise-invisibility contract.
pub fn run_uninstrumented() -> ServeResult {
    let mut rt = scenario_runtime();
    rt.serve(&serve_requests(&serve_matrices()))
        .expect("telemetry scenario serve")
}

/// Run the scenario with a [`TelemetryCollector`] attached (optionally
/// fanned out to `extra`, e.g. the profile recorder) and return both
/// the serve result and the finished snapshot.
pub fn run_instrumented(extra: Option<Arc<dyn TraceSink>>) -> (ServeResult, TelemetrySnapshot) {
    let collector = Arc::new(TelemetryCollector::new(collector_config()));
    let sink: Arc<dyn TraceSink> = match extra {
        Some(extra) => Arc::new(trace::Fanout::new(vec![
            collector.clone() as Arc<dyn TraceSink>,
            extra,
        ])),
        None => collector.clone(),
    };
    let mut rt = scenario_runtime();
    rt.set_trace_sink(sink);
    let out = rt
        .serve(&serve_requests(&serve_matrices()))
        .expect("telemetry scenario serve");
    (out, collector.finish())
}

/// Extract the gate's headline metrics from a finished run: the
/// report's request accounting and latency stats plus telemetry-derived
/// series (window count, tenant-0 demand, alert count).
pub fn gate_metrics(out: &ServeResult, snap: &TelemetrySnapshot) -> BTreeMap<String, f64> {
    let rep = &out.report;
    let mut m = BTreeMap::new();
    m.insert("served".into(), rep.served as f64);
    m.insert("rejected".into(), rep.rejected as f64);
    m.insert("deadline_missed".into(), rep.deadline_missed as f64);
    m.insert("failed".into(), rep.failed as f64);
    m.insert("batches".into(), rep.batches as f64);
    m.insert("cache_hit_rate".into(), rep.cache.hit_rate());
    m.insert("latency_p50_ms".into(), rep.latency_p50_ms);
    m.insert("latency_p99_ms".into(), rep.latency_p99_ms);
    m.insert("latency_mean_ms".into(), rep.latency_mean_ms);
    m.insert("makespan_ms".into(), rep.makespan_ms);
    let windows = snap.registry.max_window().map_or(0, |w| w + 1);
    m.insert("windows".into(), windows as f64);
    m.insert("alerts".into(), snap.alerts.len() as f64);
    let tenant0 = snap
        .registry
        .counter_total("tenant_requests_total", "tenant=\"0\"");
    m.insert("tenant0_requests".into(), tenant0);
    let h = snap.registry.hist_total("request_latency_ms", "tenant=\"0\"");
    if h.count > 0 {
        m.insert("tenant0_p99_ms".into(), h.quantile(0.99));
    }
    m
}

/// Round to `digits` significant digits (the baseline's precision).
pub fn round_sig(v: f64, digits: i32) -> f64 {
    if v == 0.0 || !v.is_finite() {
        return v;
    }
    let mag = v.abs().log10().floor() as i32;
    let factor = 10f64.powi(digits - 1 - mag);
    (v * factor).round() / factor
}

/// Render metrics as the baseline JSON: one sorted `"key": value` pair
/// per line, values rounded to [`SIG_DIGITS`] significant digits.
pub fn baseline_json(metrics: &BTreeMap<String, f64>) -> String {
    let mut j = String::from("{\n");
    for (i, (k, v)) in metrics.iter().enumerate() {
        let sep = if i + 1 == metrics.len() { "" } else { "," };
        j.push_str(&format!("  \"{k}\": {}{sep}\n", round_sig(*v, SIG_DIGITS)));
    }
    j.push_str("}\n");
    j
}

/// Parse a baseline written by [`baseline_json`] (flat string→number
/// object, one pair per line).
pub fn parse_baseline(text: &str) -> Result<BTreeMap<String, f64>, String> {
    let mut m = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        if line.is_empty() || line == "{" || line == "}" {
            continue;
        }
        let (key, value) = line
            .split_once(':')
            .ok_or_else(|| format!("bad baseline line: {line}"))?;
        let key = key.trim().trim_matches('"').to_string();
        let value: f64 = value
            .trim()
            .parse()
            .map_err(|_| format!("bad baseline value in: {line}"))?;
        m.insert(key, value);
    }
    if m.is_empty() {
        return Err("baseline is empty".into());
    }
    Ok(m)
}

/// Compare a fresh run against the baseline with relative tolerance
/// `tol`. Returns one human-readable line per violation — empty means
/// the gate passes. Missing or extra keys are violations too (schema
/// drift is a regression in the gate's book).
pub fn compare(
    baseline: &BTreeMap<String, f64>,
    fresh: &BTreeMap<String, f64>,
    tol: f64,
) -> Vec<String> {
    let mut failures = Vec::new();
    for (k, b) in baseline {
        match fresh.get(k) {
            None => failures.push(format!("{k}: in baseline but missing from fresh run")),
            Some(f) => {
                let rel = (f - b).abs() / b.abs().max(1e-12);
                if rel > tol {
                    failures.push(format!(
                        "{k}: baseline {b}, fresh {f} (rel diff {rel:.3e} > tol {tol:.3e})"
                    ));
                }
            }
        }
    }
    for k in fresh.keys() {
        if !baseline.contains_key(k) {
            failures.push(format!("{k}: in fresh run but missing from baseline"));
        }
    }
    failures
}

/// Everything one gate invocation needs to know.
#[derive(Debug)]
pub struct GateOutcome {
    /// Violation lines (empty = pass).
    pub failures: Vec<String>,
    /// The fresh run's metrics.
    pub metrics: BTreeMap<String, f64>,
}

/// Run the scenario and gate it against `baseline_path`.
pub fn run_gate(baseline_path: &Path, tol: f64) -> Result<GateOutcome, String> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read {}: {e}", baseline_path.display()))?;
    let baseline = parse_baseline(&text)?;
    let (out, snap) = run_instrumented(None);
    let metrics = gate_metrics(&out, &snap);
    Ok(GateOutcome {
        failures: compare(&baseline, &metrics, tol),
        metrics,
    })
}

/// Run the scenario and (re)write the baseline at `baseline_path`.
pub fn write_baseline(baseline_path: &Path) -> std::io::Result<BTreeMap<String, f64>> {
    let (out, snap) = run_instrumented(None);
    let metrics = gate_metrics(&out, &snap);
    if let Some(dir) = baseline_path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(baseline_path, baseline_json(&metrics))?;
    Ok(metrics)
}

/// The `telemetry_gate` entry point: parse flags, run the gate (or
/// rewrite the baseline), print the verdict, return the process exit
/// code. The gate has its own parser because its flags
/// (`--tolerance`, `--write-baseline`, `--baseline`) are not part of
/// the common [`crate::Cli`] set.
pub fn gate_main<I: IntoIterator<Item = String>>(args: I) -> i32 {
    let mut baseline = PathBuf::from("results/baseline_metrics.json");
    let mut tol = DEFAULT_TOLERANCE;
    let mut write = false;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--baseline" => match it.next() {
                Some(p) => baseline = PathBuf::from(p),
                None => {
                    eprintln!("--baseline needs a path");
                    return 2;
                }
            },
            "--tolerance" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(t) if t >= 0.0 => tol = t,
                _ => {
                    eprintln!("--tolerance needs a non-negative number");
                    return 2;
                }
            },
            "--write-baseline" => write = true,
            "--help" | "-h" => {
                eprintln!(
                    "flags: --baseline PATH    baseline JSON (default results/baseline_metrics.json)\n       --tolerance F      relative tolerance (default {DEFAULT_TOLERANCE})\n       --write-baseline   rewrite the baseline from a fresh run"
                );
                return 2;
            }
            other => {
                eprintln!("unknown flag '{other}' (try --help)");
                return 2;
            }
        }
    }

    if write {
        match write_baseline(&baseline) {
            Ok(metrics) => {
                println!(
                    "wrote {} ({} metrics, {} sig digits)",
                    baseline.display(),
                    metrics.len(),
                    SIG_DIGITS
                );
                return 0;
            }
            Err(e) => {
                eprintln!("cannot write {}: {e}", baseline.display());
                return 2;
            }
        }
    }

    match run_gate(&baseline, tol) {
        Ok(outcome) if outcome.failures.is_empty() => {
            println!(
                "telemetry gate PASS: {} metrics within tolerance {tol} of {}",
                outcome.metrics.len(),
                baseline.display()
            );
            0
        }
        Ok(outcome) => {
            eprintln!(
                "telemetry gate FAIL vs {} (tolerance {tol}):",
                baseline.display()
            );
            for f in &outcome.failures {
                eprintln!("  {f}");
            }
            1
        }
        Err(msg) => {
            eprintln!("telemetry gate error: {msg}");
            2
        }
    }
}

/// Paths the profile run's telemetry export wrote.
#[derive(Debug, Clone)]
pub struct TelemetryOutputs {
    /// Windowed time-series CSV.
    pub csv: PathBuf,
    /// Prometheus text-format snapshot.
    pub prom: PathBuf,
}

/// Export a snapshot under `out_dir` as `<stem>.csv` +
/// `<stem>.prom`.
pub fn export_snapshot(
    out_dir: &str,
    stem: &str,
    snap: &TelemetrySnapshot,
) -> std::io::Result<TelemetryOutputs> {
    std::fs::create_dir_all(out_dir)?;
    let csv = Path::new(out_dir).join(format!("{stem}.csv"));
    std::fs::write(&csv, telemetry::to_csv(snap))?;
    let prom = Path::new(out_dir).join(format!("{stem}.prom"));
    std::fs::write(&prom, telemetry::to_prometheus(snap))?;
    Ok(TelemetryOutputs { csv, prom })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_sig_keeps_leading_digits() {
        assert_eq!(round_sig(1.23456789, 6), 1.23457);
        assert_eq!(round_sig(0.000123456789, 6), 0.000123457);
        assert_eq!(round_sig(123456789.0, 6), 123457000.0);
        assert_eq!(round_sig(0.0, 6), 0.0);
        assert_eq!(round_sig(-1.23456789, 3), -1.23);
    }

    #[test]
    fn baseline_roundtrips() {
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1.25);
        m.insert("b".to_string(), 240.0);
        let parsed = parse_baseline(&baseline_json(&m)).unwrap();
        assert_eq!(parsed, m);
    }

    #[test]
    fn compare_flags_drift_and_schema_changes() {
        let mut base = BTreeMap::new();
        base.insert("x".to_string(), 100.0);
        let mut fresh = base.clone();
        assert!(compare(&base, &fresh, 0.0).is_empty());
        fresh.insert("x".to_string(), 101.0);
        assert!(compare(&base, &fresh, 0.02).is_empty());
        assert_eq!(compare(&base, &fresh, 0.001).len(), 1);
        fresh.remove("x");
        fresh.insert("y".to_string(), 1.0);
        assert_eq!(compare(&base, &fresh, 0.5).len(), 2);
    }
}
