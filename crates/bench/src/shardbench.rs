//! Sharded-serving scaling sweep: one seeded Zipf stream per corpus
//! family, served in split mode by shard groups of 1→16 shards under
//! every partitioning strategy. Emits `results/shard_scaling.csv`.
//!
//! The interconnect is priced PCIe-class (12 GB/s, 5 µs) rather than
//! NVLink-class on purpose: shards model *nodes*, and a weak link is
//! what makes the communication wall visible inside the sweep. The
//! curve shows per family where the bulk-synchronous halo-exchange +
//! merge charge kills scaling:
//!
//! * **banded** — ghost columns exist only at block seams, so the halo
//!   is a few dozen bytes per shard; scaling holds to 16 shards while
//!   the (latency-dominated) comm share climbs toward parity.
//! * **powerlaw / rmat** — hub columns are referenced from every row
//!   block, so the ghost set approaches the whole input vector per
//!   shard and the charge erases the compute win almost immediately.
//!   The pinned flat-span schedule (the price of bitwise-identical
//!   split results, see `runtime::split`) also serializes hub rows, so
//!   skewed slices under-fill their device — both effects are visible
//!   in the same row of the CSV.
//!
//! Extends `serve_bench` (pool scaling within a node) and
//! `ablation_multi_gpu` (device scaling under one runtime) one level
//! up, with the same determinism contract: every row of the CSV is a
//! pure function of the seeds, and CI byte-diffs two runs.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

use runtime::{zipf_workload, Request, WorkloadSpec};
use shard::{ShardGroup, ShardGroupConfig};
use simt::exchange::halo_exchange;
use simt::{GpuSpec, MultiGpuSpec};
use sparse::{Csr, ShardPlan, ShardStrategy};

use crate::{Cli, CsvWriter};

const REQUESTS: usize = 100;
const SHARD_COUNTS: [usize; 5] = [1, 2, 4, 8, 16];
const STRATEGIES: [ShardStrategy; 3] = [
    ShardStrategy::Rows1D,
    ShardStrategy::Nnz1D,
    ShardStrategy::RowNnz2D,
];
const LINK_BW_GBS: f64 = 12.0;
const LINK_LATENCY_US: f64 = 5.0;

/// One corpus family: a name plus a seeded generator of its `take`
/// members (sizes grow with the index, so `--limit` scales work).
struct Family {
    name: &'static str,
    gen: fn(usize) -> Csr<f32>,
}

const FAMILIES: [Family; 3] = [
    Family {
        name: "powerlaw",
        gen: |i| {
            sparse::gen::powerlaw(
                10_000 * (i + 1),
                10_000 * (i + 1),
                200_000 * (i + 1),
                1.8,
                50 + i as u64,
            )
        },
    },
    Family {
        name: "banded",
        gen: |i| sparse::gen::banded(40_000 * (i + 1), 8, 60 + i as u64),
    },
    Family {
        name: "rmat",
        gen: |i| sparse::gen::rmat(12 + (i as u32 % 3), 16, (0.57, 0.19, 0.19), 70 + i as u64),
    },
];

/// Per-request communication charge of `a` at `n` shards — recomputed
/// here exactly as `ShardGroup::serve_split` charges it, so the comm
/// share column decomposes the measured makespan rather than guessing.
fn comm_ms_of(a: &Csr<f32>, n: usize, strategy: ShardStrategy, link: &MultiGpuSpec) -> f64 {
    let plan = ShardPlan::partition(a, n, strategy);
    let halo: Vec<u64> = plan.shards.iter().map(|s| s.halo_bytes()).collect();
    halo_exchange(link, &halo, plan.max_output_bytes()).total_ms()
}

/// Run the full sweep and return the CSV's path.
pub fn run(cli: &Cli) -> std::io::Result<PathBuf> {
    let take = cli.limit.unwrap_or(4).max(1);

    let mut csv = CsvWriter::create(
        &cli.out_dir,
        "shard_scaling.csv",
        "family,strategy,shards,served,shard_rejects,halo_bytes,comm_share,p50_ms,p99_ms,makespan_ms,throughput_rps,speedup_vs_1",
    )?;

    println!("== shard_bench: split-mode scaling, 1→16 shards ==");
    println!(
        "{:<10} {:<9} {:>6} {:>6} {:>12} {:>10} {:>10} {:>12} {:>9}",
        "family", "strategy", "shards", "served", "halo bytes", "comm", "p99 ms", "req/s", "speedup"
    );

    for family in &FAMILIES {
        let matrices: Vec<Arc<Csr<f32>>> =
            (0..take).map(|i| Arc::new((family.gen)(i))).collect();
        let requests: Vec<Request> = zipf_workload(
            &matrices,
            &WorkloadSpec {
                requests: REQUESTS,
                zipf_s: 1.1,
                mean_interarrival_ms: 0.001,
                seed: 42,
            },
        );
        let by_id: HashMap<u64, &Arc<Csr<f32>>> =
            requests.iter().map(|r| (r.id, &r.matrix)).collect();

        for strategy in STRATEGIES {
            let mut base_makespan = None;
            for shards in SHARD_COUNTS {
                let mut cfg = ShardGroupConfig::new(shards);
                cfg.strategy = strategy;
                cfg.link_bw_gbs = LINK_BW_GBS;
                cfg.link_latency_us = LINK_LATENCY_US;
                let mut group = ShardGroup::new(GpuSpec::test_tiny(), cfg);
                let link = MultiGpuSpec {
                    device: GpuSpec::test_tiny(),
                    num_devices: shards as u32,
                    link_bw_gbs: LINK_BW_GBS,
                    link_latency_us: LINK_LATENCY_US,
                };
                let out = group.serve_split(&requests).expect("serve");
                let r = &out.report;
                assert!(r.reconciles(), "report must reconcile");

                let comm_ms: f64 = out
                    .completions
                    .iter()
                    .map(|c| comm_ms_of(by_id[&c.id], shards, strategy, &link))
                    .sum();
                let comm_share = if r.makespan_ms > 0.0 {
                    (comm_ms / r.makespan_ms).min(1.0)
                } else {
                    0.0
                };
                let speedup = match base_makespan {
                    None => {
                        base_makespan = Some(r.makespan_ms);
                        1.0
                    }
                    Some(base) => base / r.makespan_ms.max(f64::MIN_POSITIVE),
                };

                csv.row(&format!(
                    "{},{},{},{},{},{},{:.4},{:.5},{:.5},{:.4},{:.1},{:.3}",
                    family.name,
                    strategy.name(),
                    shards,
                    r.served,
                    r.shard.shard_rejects,
                    r.shard.halo_bytes,
                    comm_share,
                    r.latency_p50_ms,
                    r.latency_p99_ms,
                    r.makespan_ms,
                    r.throughput_rps(),
                    speedup
                ))?;
                println!(
                    "{:<10} {:<9} {:>6} {:>6} {:>12} {:>9.1}% {:>10.4} {:>12.0} {:>8.2}x",
                    family.name,
                    strategy.name(),
                    shards,
                    r.served,
                    r.shard.halo_bytes,
                    comm_share * 100.0,
                    r.latency_p99_ms,
                    r.throughput_rps(),
                    speedup
                );
            }
        }
    }
    let path = csv.finish()?;
    eprintln!("wrote {}", path.display());
    host_backend_wall_clock(take);
    Ok(path)
}

/// Host-backend wall clock for the powerlaw family's 4-shard split.
///
/// Stdout only: the CSV above is already finished, and the simulated
/// columns are pinned bitwise across backends (`tests/host_parallel.rs`),
/// so the host's own compute time is the one number that may move.
/// Speedup is bounded by this machine's core count.
fn host_backend_wall_clock(take: usize) {
    use simt::HostBackend;

    let family = &FAMILIES[0]; // powerlaw — the skewed, hub-heavy case
    let matrices: Vec<Arc<Csr<f32>>> = (0..take).map(|i| Arc::new((family.gen)(i))).collect();
    let requests = zipf_workload(
        &matrices,
        &WorkloadSpec {
            requests: REQUESTS,
            zipf_s: 1.1,
            mean_interarrival_ms: 0.001,
            seed: 42,
        },
    );
    println!("\n== host backend wall clock: powerlaw x 4 shards (nnz1d) ==");
    println!("{:<13} {:>10} {:>9}", "backend", "wall ms", "speedup");

    let serve = |backend: HostBackend| {
        let mut cfg = ShardGroupConfig::new(4);
        cfg.strategy = ShardStrategy::Nnz1D;
        cfg.link_bw_gbs = LINK_BW_GBS;
        cfg.link_latency_us = LINK_LATENCY_US;
        let mut group = ShardGroup::new(GpuSpec::test_tiny(), cfg);
        let t0 = std::time::Instant::now();
        let out = simt::host::scoped(backend, || group.serve_split(&requests)).expect("serve");
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        (wall_ms, out.report.makespan_ms.to_bits(), out.report.served)
    };

    let (seq_ms, seq_makespan, seq_served) = serve(HostBackend::Sequential);
    println!("{:<13} {:>10.1} {:>8.2}x", "sequential", seq_ms, 1.0);
    for threads in [2usize, 4, 8] {
        let (ms, makespan, served) = serve(HostBackend::Parallel { threads });
        assert_eq!(
            (makespan, served),
            (seq_makespan, seq_served),
            "parallel({threads}) diverged from the sequential backend"
        );
        println!(
            "{:<13} {:>10.1} {:>8.2}x",
            format!("parallel({threads})"),
            ms,
            seq_ms / ms
        );
    }
}
