//! Lines-of-code counting for Table 1.
//!
//! The paper counts non-commented kernel-contributing LoC (clang-format,
//! Chromium style). Our sources delimit the equivalent regions with
//! `// LOC-BEGIN(tag)` / `// LOC-END(tag)` markers; this module extracts a
//! region and counts non-blank, non-comment, non-doc lines, excluding the
//! markers themselves.

use std::path::Path;

/// Count the kernel-contributing LoC of region `tag` in `source`.
/// Returns `None` if the region is absent or unterminated.
pub fn count_region(source: &str, tag: &str) -> Option<usize> {
    let begin = format!("LOC-BEGIN({tag})");
    let end = format!("LOC-END({tag})");
    let mut counting = false;
    let mut found = false;
    let mut count = 0usize;
    for line in source.lines() {
        if line.contains(&begin) {
            counting = true;
            found = true;
            continue;
        }
        if line.contains(&end) {
            if !counting {
                return None;
            }
            counting = false;
            continue;
        }
        if counting && is_code(line) {
            count += 1;
        }
    }
    if !found || counting {
        None
    } else {
        Some(count)
    }
}

/// Count region `tag` in a file on disk.
pub fn count_region_in_file(path: impl AsRef<Path>, tag: &str) -> Option<usize> {
    let src = std::fs::read_to_string(path).ok()?;
    count_region(&src, tag)
}

/// A line counts as code if it is non-blank and not purely a comment
/// (line comments and doc comments; attribute lines count as code, like
/// clang-format counts C++ attributes).
fn is_code(line: &str) -> bool {
    let t = line.trim();
    !(t.is_empty() || t.starts_with("//") || t.starts_with("/*") || t.starts_with('*'))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
fn outside() {}
// LOC-BEGIN(demo)
/// doc comment — not counted
// plain comment — not counted
fn inside() {
    let x = 1;

    x + 1
}
// LOC-END(demo)
fn after() {}
"#;

    #[test]
    fn counts_only_code_lines_inside_region() {
        // fn line, let, expr, closing brace = 4.
        assert_eq!(count_region(SRC, "demo"), Some(4));
    }

    #[test]
    fn missing_or_unterminated_regions_are_none() {
        assert_eq!(count_region(SRC, "nope"), None);
        assert_eq!(count_region("// LOC-BEGIN(x)\ncode();\n", "x"), None);
        assert_eq!(count_region("code();\n// LOC-END(x)\n", "x"), None);
    }

    #[test]
    fn real_schedule_regions_exist_and_are_small() {
        // The markers live in the workspace sources; resolve relative to
        // this crate's manifest.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let thread = count_region_in_file(
            root.join("crates/core/src/schedule/thread_mapped.rs"),
            "thread_mapped",
        )
        .expect("thread_mapped region present");
        let merge = count_region_in_file(
            root.join("crates/core/src/schedule/merge_path.rs"),
            "merge_path",
        )
        .expect("merge_path region present");
        let group = count_region_in_file(
            root.join("crates/core/src/schedule/group_mapped.rs"),
            "group_mapped",
        )
        .expect("group_mapped region present");
        let cub = count_region_in_file(
            root.join("crates/baselines/src/cub_like.rs"),
            "cub_merge_path",
        )
        .expect("cub region present");
        // The paper's qualitative claim: the framework schedules are an
        // order of magnitude smaller than the hardwired merge-path.
        assert!(thread < 30, "thread-mapped region = {thread}");
        assert!(merge < 80, "merge-path region = {merge}");
        assert!(group < 80, "group-mapped region = {group}");
        assert!(cub > merge, "cub ({cub}) should exceed framework ({merge})");
    }
}
