//! The `autotune_bench` experiment: static heuristic vs online
//! autotuner, steady state against steady state.
//!
//! For each corpus family the harness builds a skewed Zipf serving
//! workload and drives two runtimes over identical request streams:
//!
//! * **static** — the paper's α/β heuristic picks every schedule;
//! * **tuned** — [`runtime::TuneConfig`] enabled, so plan-cache misses
//!   sweep the candidate space ([`loops::dispatch::candidates`]) under
//!   an ε-greedy policy and promote the cheapest schedule.
//!
//! Both runtimes first serve warm-up streams (the tuned one until every
//! family matrix has a promoted winner, bounded by
//! [`MAX_WARMUP_ROUNDS`]), then one *steady-state* stream whose
//! per-request service-time percentiles are compared. Everything — generators, workload, tuner
//! policy, simulated cost — is seeded, so `results/autotune.json` is
//! byte-identical across runs of the same build; CI diffs two runs.

use std::sync::Arc;

use crate::cli::Cli;
use runtime::{zipf_workload, Runtime, RuntimeConfig, TuneConfig, WorkloadSpec};
use simt::GpuSpec;
use sparse::Csr;

/// Requests per warm-up stream.
pub const WARMUP_REQUESTS: usize = 140;

/// Requests in the measured steady-state stream.
pub const STEADY_REQUESTS: usize = 120;

/// Warm-up streams the tuned runtime may consume before the sweep must
/// have promoted a winner for every family matrix.
pub const MAX_WARMUP_ROUNDS: usize = 6;

/// Exploration rate for the bench: high, so the sweep finishes inside
/// the warm-up phase instead of trickling into the measured stream.
const BENCH_EPSILON: f64 = 0.9;

/// One family's steady-state comparison.
#[derive(Debug, Clone)]
pub struct FamilyResult {
    /// Family name (`banded`, `powerlaw`, `uniform`).
    pub family: String,
    /// Matrices in the family corpus.
    pub matrices: usize,
    /// Schedule the static heuristic picks for the family's hottest
    /// matrix.
    pub heuristic_schedule: String,
    /// Schedule the tuner promoted for that matrix.
    pub tuned_schedule: String,
    /// Static steady-state median service time, dispatch → completion
    /// (ms).
    pub static_p50_ms: f64,
    /// Tuned steady-state median service time (ms).
    pub tuned_p50_ms: f64,
    /// Static steady-state p99 service time (ms).
    pub static_p99_ms: f64,
    /// Tuned steady-state p99 service time (ms).
    pub tuned_p99_ms: f64,
    /// Exploration serves the sweep spent during warm-up.
    pub tune_explores: usize,
    /// Promoted winners (one per fully-swept matrix).
    pub tune_promotes: usize,
    /// Warm-up streams the tuned runtime consumed.
    pub warmup_rounds: usize,
}

impl FamilyResult {
    /// Static-over-tuned median speedup (>1 means tuning won).
    pub fn speedup_p50(&self) -> f64 {
        if self.tuned_p50_ms <= 0.0 {
            0.0
        } else {
            self.static_p50_ms / self.tuned_p50_ms
        }
    }
}

/// Paths plus parsed rows of everything one [`run`] call produced.
#[derive(Debug, Clone)]
pub struct AutotuneOutputs {
    /// The deterministic comparison report.
    pub json: std::path::PathBuf,
    /// Per-family results, in corpus order.
    pub families: Vec<FamilyResult>,
}

/// `--limit N` scales the experiment down (same convention as the
/// `profile` experiment): N = 10 is full size, smaller N shrinks the
/// matrices and streams proportionally. The family list never changes,
/// so the JSON shape is flag-independent.
fn scale_of(cli: &Cli) -> f64 {
    cli.limit.map_or(1.0, |l| (l as f64 / 10.0).clamp(0.05, 1.0))
}

fn corpus(name: &str, scale: f64) -> Vec<Arc<Csr<f32>>> {
    let n = |base: usize| ((base as f64 * scale) as usize).max(400);
    match name {
        // Perfectly regular rows: merge-path's in-kernel searches are
        // pure overhead, so the heuristic's pick is beatable.
        "banded" => vec![
            Arc::new(sparse::gen::banded(n(15_000), 8, 31)),
            Arc::new(sparse::gen::banded(n(20_000), 6, 32)),
        ],
        // Skewed rows: merge-path is good, but block-mapped edges it
        // out on this simulator once hub rows dominate whole blocks.
        "powerlaw" => vec![
            Arc::new(sparse::gen::powerlaw(n(12_000), n(12_000), n(180_000), 1.8, 33)),
            Arc::new(sparse::gen::powerlaw(n(16_000), n(16_000), n(240_000), 1.7, 34)),
        ],
        // Near-uniform rows: same story as banded, milder margin.
        "uniform" => vec![
            Arc::new(sparse::gen::uniform(n(12_000), n(12_000), n(140_000), 35)),
            Arc::new(sparse::gen::uniform(n(16_000), n(16_000), n(180_000), 36)),
        ],
        other => panic!("unknown family {other}"),
    }
}

fn workload(matrices: &[Arc<Csr<f32>>], requests: usize, seed: u64) -> Vec<runtime::Request> {
    zipf_workload(
        matrices,
        &WorkloadSpec {
            requests,
            zipf_s: 1.1,
            // Light queueing: steady-state latency tracks service time,
            // not arrival bursts.
            mean_interarrival_ms: 0.4,
            seed,
        },
    )
}

fn run_family(index: usize, name: &str, scale: f64) -> FamilyResult {
    let matrices = corpus(name, scale);
    let warmup_n = ((WARMUP_REQUESTS as f64 * scale) as usize).max(30);
    let steady_n = ((STEADY_REQUESTS as f64 * scale) as usize).max(40);
    let seed = 1_000 + index as u64;
    let warmup: Vec<Vec<runtime::Request>> = (0..MAX_WARMUP_ROUNDS)
        .map(|round| workload(&matrices, warmup_n, seed + 10 * round as u64))
        .collect();
    let steady = workload(&matrices, steady_n, seed + 999);

    // Steady-state quality is the per-request *service* time
    // (dispatch → completion). Stream clocks persist across serve
    // calls, so arrival-relative latency would mostly measure the
    // warm-up tail both runtimes share, not the schedule.
    let service_quantile = |out: &runtime::ServeResult, q: f64| {
        let samples: Vec<f64> = out
            .completions
            .iter()
            .map(|c| c.end_ms - c.start_ms)
            .collect();
        crate::summary::quantile(&samples, q)
    };

    let mut fixed = Runtime::new(GpuSpec::v100(), RuntimeConfig::default());
    // One warm-up stream fills the static plan cache.
    fixed.serve(&warmup[0]).expect("static warmup");
    let static_steady = fixed.serve(&steady).expect("static steady");

    let mut tuned = Runtime::new(
        GpuSpec::v100(),
        RuntimeConfig {
            tune: TuneConfig {
                enabled: true,
                epsilon: BENCH_EPSILON,
                ..TuneConfig::default()
            },
            ..RuntimeConfig::default()
        },
    );
    let mut warmup_rounds = 0;
    for stream in &warmup {
        tuned.serve(stream).expect("tuned warmup");
        warmup_rounds += 1;
        if tuned.tune_stats().promotes >= matrices.len() {
            break;
        }
    }
    let stats = tuned.tune_stats();
    let tuned_steady = tuned.serve(&steady).expect("tuned steady");

    let hottest = &matrices[0]; // zipf rank 0 — the head of the skew
    let heuristic_schedule = loops::heuristic::Heuristic::paper()
        .select(hottest.rows(), hottest.cols(), hottest.nnz())
        .to_string();
    let tuned_schedule = tuned
        .tuned_candidate(loops::dispatch::KernelKind::Spmv, hottest)
        .map_or_else(
            || "<unpromoted>".into(),
            |(k, f)| {
                if f == sparse::FormatKind::Csr {
                    k.to_string()
                } else {
                    format!("{k}@{f}")
                }
            },
        );

    FamilyResult {
        family: name.to_string(),
        matrices: matrices.len(),
        heuristic_schedule,
        tuned_schedule,
        static_p50_ms: service_quantile(&static_steady, 0.50),
        tuned_p50_ms: service_quantile(&tuned_steady, 0.50),
        static_p99_ms: service_quantile(&static_steady, 0.99),
        tuned_p99_ms: service_quantile(&tuned_steady, 0.99),
        tune_explores: stats.explores,
        tune_promotes: stats.promotes,
        warmup_rounds,
    }
}

fn render_json(rows: &[FamilyResult], scale: f64) -> String {
    let mut j = String::from("{\n");
    j.push_str(&format!("  \"epsilon\": {BENCH_EPSILON},\n"));
    j.push_str(&format!("  \"scale\": {scale},\n"));
    j.push_str("  \"families\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        j.push_str("    {\n");
        j.push_str(&format!("      \"family\": \"{}\",\n", r.family));
        j.push_str(&format!("      \"matrices\": {},\n", r.matrices));
        j.push_str(&format!(
            "      \"heuristic_schedule\": \"{}\",\n",
            r.heuristic_schedule
        ));
        j.push_str(&format!(
            "      \"tuned_schedule\": \"{}\",\n",
            r.tuned_schedule
        ));
        j.push_str(&format!("      \"static_p50_ms\": {:.9},\n", r.static_p50_ms));
        j.push_str(&format!("      \"tuned_p50_ms\": {:.9},\n", r.tuned_p50_ms));
        j.push_str(&format!("      \"static_p99_ms\": {:.9},\n", r.static_p99_ms));
        j.push_str(&format!("      \"tuned_p99_ms\": {:.9},\n", r.tuned_p99_ms));
        j.push_str(&format!("      \"speedup_p50\": {:.6},\n", r.speedup_p50()));
        j.push_str(&format!("      \"tune_explores\": {},\n", r.tune_explores));
        j.push_str(&format!("      \"tune_promotes\": {},\n", r.tune_promotes));
        j.push_str(&format!("      \"warmup_rounds\": {}\n", r.warmup_rounds));
        j.push_str(&format!("    }}{sep}\n"));
    }
    j.push_str("  ]\n}\n");
    j
}

/// Run the ablation and write `autotune.json` under the CLI's output
/// directory. `--limit N` scales the corpus and streams down (N = 10 is
/// full size).
pub fn run(cli: &Cli) -> std::io::Result<AutotuneOutputs> {
    let families = ["banded", "powerlaw", "uniform"];
    let scale = scale_of(cli);
    let mut rows = Vec::with_capacity(families.len());
    for (i, name) in families.iter().enumerate() {
        let r = run_family(i, name, scale);
        println!(
            "{:<9} static {} p50 {:.5} ms | tuned {} p50 {:.5} ms | speedup {:.3}x \
             ({} explores, {} promotions, {} warmup rounds)",
            r.family,
            r.heuristic_schedule,
            r.static_p50_ms,
            r.tuned_schedule,
            r.tuned_p50_ms,
            r.speedup_p50(),
            r.tune_explores,
            r.tune_promotes,
            r.warmup_rounds
        );
        rows.push(r);
    }
    std::fs::create_dir_all(&cli.out_dir)?;
    let path = std::path::Path::new(&cli.out_dir).join("autotune.json");
    std::fs::write(&path, render_json(&rows, scale))?;
    println!("wrote {}", path.display());
    Ok(AutotuneOutputs {
        json: path,
        families: rows,
    })
}
