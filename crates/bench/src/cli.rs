//! Minimal flag parsing shared by the experiment binaries (no external
//! CLI dependency; the flags are few and uniform).

/// Parsed common flags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cli {
    /// Run only the first `limit` corpus entries (deterministic subset).
    pub limit: Option<usize>,
    /// Output directory for CSVs.
    pub out_dir: String,
    /// Validate simulated results against CPU references where cheap.
    pub validate: bool,
}

impl Default for Cli {
    fn default() -> Self {
        Self {
            limit: None,
            out_dir: "results".into(),
            validate: true,
        }
    }
}

impl Cli {
    /// Parse from an iterator of arguments (excluding `argv[0]`).
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut cli = Self::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--limit" => {
                    let v = it.next().ok_or("--limit needs a value")?;
                    cli.limit = Some(v.parse().map_err(|_| format!("bad --limit '{v}'"))?);
                }
                "--out" => {
                    cli.out_dir = it.next().ok_or("--out needs a value")?;
                }
                "--no-validate" => cli.validate = false,
                "--help" | "-h" => {
                    return Err(
                        "flags: --limit N   run first N corpus entries\n       --out DIR   CSV output directory (default results/)\n       --no-validate   skip CPU cross-checks"
                            .into(),
                    )
                }
                other => return Err(format!("unknown flag '{other}' (try --help)")),
            }
        }
        Ok(cli)
    }

    /// Parse from the process environment, exiting with a message on error.
    pub fn parse() -> Self {
        match Self::parse_from(std::env::args().skip(1)) {
            Ok(c) => c,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Cli, String> {
        Cli::parse_from(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let c = parse(&[]).unwrap();
        assert_eq!(c.limit, None);
        assert_eq!(c.out_dir, "results");
        assert!(c.validate);
    }

    #[test]
    fn all_flags() {
        let c = parse(&["--limit", "12", "--out", "/tmp/x", "--no-validate"]).unwrap();
        assert_eq!(c.limit, Some(12));
        assert_eq!(c.out_dir, "/tmp/x");
        assert!(!c.validate);
    }

    #[test]
    fn errors() {
        assert!(parse(&["--limit"]).is_err());
        assert!(parse(&["--limit", "abc"]).is_err());
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--help"]).is_err());
    }
}
