//! Corpus iteration shared by the experiment binaries.

use crate::cli::Cli;
use sparse::corpus::{corpus_subset, suite_sparse_surrogate, CorpusSpec};
use sparse::Csr;

/// Maximum nnz for which CPU validation is run (keeps harness runs fast
/// while still cross-checking a large share of the corpus).
pub const VALIDATE_NNZ_LIMIT: usize = 300_000;

/// Iterate the (possibly limited) corpus, materializing each matrix once
/// and handing it — with its test vector — to `f`. Progress is printed to
/// stderr every few datasets.
pub fn for_each_corpus_matrix(
    cli: &Cli,
    mut f: impl FnMut(&CorpusSpec, &Csr<f32>, &[f32]),
) {
    let specs = match cli.limit {
        Some(n) => corpus_subset(n),
        None => suite_sparse_surrogate(),
    };
    let total = specs.len();
    for (i, spec) in specs.iter().enumerate() {
        let a = spec.build();
        let x = sparse::dense::test_vector(a.cols());
        f(spec, &a, &x);
        if (i + 1) % 25 == 0 || i + 1 == total {
            eprintln!("  [{}/{}] {}", i + 1, total, spec.name);
        }
    }
}

/// Cross-check a simulated SpMV result against the CPU reference when the
/// matrix is small enough; panics (with the dataset name) on mismatch so a
/// broken kernel can never produce a plausible-looking figure.
pub fn validate_against_reference(name: &str, a: &Csr<f32>, x: &[f32], y: &[f32]) {
    if a.nnz() > VALIDATE_NNZ_LIMIT {
        return;
    }
    let want = a.spmv_ref(x);
    for (i, (g, w)) in y.iter().zip(&want).enumerate() {
        assert!(
            (g - w).abs() < 5e-3 * w.abs().max(1.0),
            "{name}: y[{i}] = {g}, reference {w}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn limited_iteration_visits_requested_count() {
        let cli = Cli {
            limit: Some(5),
            ..Cli::default()
        };
        let mut names = Vec::new();
        for_each_corpus_matrix(&cli, |spec, a, x| {
            names.push(spec.name.clone());
            assert_eq!(x.len(), a.cols());
        });
        assert_eq!(names.len(), 5);
    }

    #[test]
    fn validation_accepts_the_reference_itself() {
        let a = sparse::gen::uniform(50, 50, 400, 5);
        let x = sparse::dense::test_vector(50);
        let y = a.spmv_ref(&x);
        validate_against_reference("self", &a, &x, &y);
    }

    #[test]
    #[should_panic(expected = "reference")]
    fn validation_rejects_wrong_results() {
        let a = sparse::gen::uniform(50, 50, 400, 5);
        let x = sparse::dense::test_vector(50);
        let mut y = a.spmv_ref(&x);
        y[3] += 1.0;
        validate_against_reference("broken", &a, &x, &y);
    }
}
