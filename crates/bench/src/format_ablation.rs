//! The `format_ablation` experiment: how much of the autotuner's win
//! comes from the *format* axis, beyond the schedule axis alone.
//!
//! For each corpus family the harness emits two kinds of record into
//! `results/format_ablation.csv`:
//!
//! * **cell** rows — the full (schedule × format) candidate grid
//!   ([`loops::dispatch::candidates`]) evaluated once on the family's
//!   hottest matrix, with the deterministic serve cost and the
//!   one-time conversion cost per cell. This is the raw landscape the
//!   tuner sweeps.
//! * **serve** rows — three runtimes driven over identical seeded Zipf
//!   request streams, steady state against steady state:
//!   - `serve-static`: the paper's α/β heuristic picks every schedule;
//!   - `serve-sched-tuner`: ε-greedy sweep restricted to the schedule
//!     axis (`TuneConfig { formats: false }` — the pre-format tuner,
//!     kept as the ablation baseline);
//!   - `serve-widened-tuner`: the full (schedule × format) sweep.
//!
//! The acceptance signal lives in the `powerlaw` family: its floored
//! scale-free matrices ([`sparse::gen::powerlaw_floor`]) have a dense
//! slab + hub tail shape on which the hybrid ELL+COO serve beats every
//! CSR schedule, so the widened tuner's steady-state p50 must come in
//! under the schedule-only tuner's. Everything — generators, workload,
//! tuner policy, simulated cost — is seeded, so the CSV is
//! byte-identical across runs of the same build; CI diffs two runs and
//! the host-thread-count legs against each other.

use std::sync::Arc;

use crate::cli::Cli;
use kernels::spmv::DEFAULT_BLOCK;
use runtime::{zipf_workload, Runtime, RuntimeConfig, TuneConfig, WorkloadSpec};
use simt::{CostModel, GpuSpec};
use sparse::{Csr, FormatKind};

/// Requests per warm-up stream.
pub const WARMUP_REQUESTS: usize = 140;

/// Requests in the measured steady-state stream.
pub const STEADY_REQUESTS: usize = 120;

/// Warm-up streams a tuned runtime may consume before the sweep must
/// have promoted a winner for every family matrix.
pub const MAX_WARMUP_ROUNDS: usize = 6;

/// Exploration rate for the bench: high, so the sweep finishes inside
/// the warm-up phase instead of trickling into the measured stream.
const BENCH_EPSILON: f64 = 0.9;

/// One (schedule × format) candidate evaluated on the family's hottest
/// matrix.
#[derive(Debug, Clone)]
pub struct CellRow {
    /// Schedule label.
    pub schedule: String,
    /// Format label.
    pub format: String,
    /// Deterministic steady-state serve cost (ms), conversion excluded.
    pub cost_ms: f64,
    /// One-time conversion cost from the resident CSR (ms).
    pub convert_ms: f64,
}

/// One serving arm's steady-state comparison.
#[derive(Debug, Clone)]
pub struct ArmRow {
    /// Arm label (`serve-static`, `serve-sched-tuner`,
    /// `serve-widened-tuner`).
    pub arm: String,
    /// Schedule serving the family's hottest matrix at steady state.
    pub winner_schedule: String,
    /// Format serving that matrix at steady state.
    pub winner_format: String,
    /// Steady-state median service time, dispatch → completion (ms).
    pub p50_ms: f64,
    /// Steady-state p99 service time (ms).
    pub p99_ms: f64,
    /// Exploration serves spent during warm-up.
    pub explores: usize,
    /// Promoted winners (one per fully-swept matrix).
    pub promotes: usize,
    /// Warm-up streams consumed.
    pub warmup_rounds: usize,
}

/// One family's grid plus serving arms.
#[derive(Debug, Clone)]
pub struct FamilyResult {
    /// Family name (`banded`, `powerlaw`, `uniform`).
    pub family: String,
    /// Matrices in the family corpus.
    pub matrices: usize,
    /// The (schedule × format) landscape on the hottest matrix.
    pub cells: Vec<CellRow>,
    /// The three serving arms, in `static`, `sched`, `widened` order.
    pub arms: Vec<ArmRow>,
}

impl FamilyResult {
    /// The named arm (panics if absent — the set is fixed).
    pub fn arm(&self, name: &str) -> &ArmRow {
        self.arms
            .iter()
            .find(|a| a.arm == name)
            .unwrap_or_else(|| panic!("missing arm {name}"))
    }

    /// Schedule-only-over-widened median speedup (>1 means the format
    /// axis won something the schedule axis alone could not).
    pub fn widened_speedup_p50(&self) -> f64 {
        let widened = self.arm("serve-widened-tuner").p50_ms;
        if widened <= 0.0 {
            0.0
        } else {
            self.arm("serve-sched-tuner").p50_ms / widened
        }
    }
}

/// Paths plus parsed rows of everything one [`run`] call produced.
#[derive(Debug, Clone)]
pub struct FormatAblationOutputs {
    /// The deterministic CSV report.
    pub csv: std::path::PathBuf,
    /// Per-family results, in corpus order.
    pub families: Vec<FamilyResult>,
}

/// `--limit N` scales the experiment down (same convention as the
/// `autotune` experiment): N = 10 is full size, smaller N shrinks the
/// matrices and streams proportionally. The family list never changes,
/// so the CSV shape is flag-independent.
fn scale_of(cli: &Cli) -> f64 {
    cli.limit.map_or(1.0, |l| (l as f64 / 10.0).clamp(0.05, 1.0))
}

fn corpus(name: &str, scale: f64) -> Vec<Arc<Csr<f32>>> {
    let n = |base: usize| ((base as f64 * scale) as usize).max(400);
    match name {
        // Perfectly regular rows: ELL is padding-free here, so the
        // widened sweep has real non-CSR cells to weigh even without
        // skew.
        "banded" => vec![
            Arc::new(sparse::gen::banded(n(15_000), 8, 61)),
            Arc::new(sparse::gen::banded(n(20_000), 6, 62)),
        ],
        // Floored scale-free serving graphs: a dense width-≈k_min slab
        // plus a small hub spill. The per-row extra budget (0.55 nnz at
        // α = 2.5) is chosen so the stats-driven split lands the slab
        // exactly on the floor — zero padding — which is where the
        // fused hybrid serve beats every CSR schedule. The budget
        // scales with the row count so `--limit` keeps the shape.
        "powerlaw" => {
            let floored = |rows_base: usize, k_min: usize, seed: u64| {
                let r = n(rows_base);
                let nnz = r * k_min + r * 550 / 1000;
                Arc::new(sparse::gen::powerlaw_floor(r, r, k_min, nnz, 2.5, seed))
            };
            vec![floored(50_000, 14, 33), floored(20_000, 14, 34)]
        }
        // Near-uniform random rows: low CV keeps hybrid out of the
        // candidate set; the widened sweep must not regress here.
        "uniform" => vec![
            Arc::new(sparse::gen::uniform(n(12_000), n(12_000), n(140_000), 65)),
            Arc::new(sparse::gen::uniform(n(16_000), n(16_000), n(180_000), 66)),
        ],
        other => panic!("unknown family {other}"),
    }
}

fn workload(matrices: &[Arc<Csr<f32>>], requests: usize, seed: u64) -> Vec<runtime::Request> {
    zipf_workload(
        matrices,
        &WorkloadSpec {
            requests,
            zipf_s: 1.1,
            // Light queueing: steady-state latency tracks service time,
            // not arrival bursts.
            mean_interarrival_ms: 0.4,
            seed,
        },
    )
}

/// Evaluate the full candidate grid on `a` once, deterministically.
fn grid(a: &Csr<f32>) -> Vec<CellRow> {
    let spec = GpuSpec::v100();
    let model = CostModel::standard();
    let x = sparse::dense::test_vector(a.cols());
    let mut operands: Vec<(FormatKind, kernels::PreparedOperand)> = Vec::new();
    let mut cells = Vec::new();
    for (kind, format) in loops::dispatch::candidates(loops::dispatch::KernelKind::Spmv, a) {
        if !operands.iter().any(|(f, _)| *f == format) {
            let op = kernels::PreparedOperand::prepare(a, format).expect("prepare format");
            operands.push((format, op));
        }
        let op = &operands
            .iter()
            .find(|(f, _)| *f == format)
            .expect("operand cached above")
            .1;
        let plan = kernels::formats::prepare_format_plan(&spec, &model, a, op, kind, DEFAULT_BLOCK)
            .expect("plan candidate cell");
        let run = kernels::formats::spmv_format_with_plan(&spec, &model, a, op, &x, &plan)
            .expect("run candidate cell");
        cells.push(CellRow {
            schedule: kind.to_string(),
            format: format.to_string(),
            cost_ms: run.report.elapsed_ms(),
            convert_ms: op.convert_ms(),
        });
    }
    cells
}

fn service_quantile(out: &runtime::ServeResult, q: f64) -> f64 {
    // Per-request *service* time (dispatch → completion): stream clocks
    // persist across serve calls, so arrival-relative latency would
    // mostly measure the shared warm-up tail, not the schedule.
    let samples: Vec<f64> = out
        .completions
        .iter()
        .map(|c| c.end_ms - c.start_ms)
        .collect();
    crate::summary::quantile(&samples, q)
}

/// Winner labels for the hottest matrix under a tuned runtime.
fn winner_of(rt: &mut Runtime, hottest: &Csr<f32>) -> (String, String) {
    rt.tuned_candidate(loops::dispatch::KernelKind::Spmv, hottest)
        .map_or_else(
            || ("<unpromoted>".into(), "<unpromoted>".into()),
            |(k, f)| (k.to_string(), f.to_string()),
        )
}

fn run_tuned_arm(
    label: &str,
    formats: bool,
    matrices: &[Arc<Csr<f32>>],
    warmup: &[Vec<runtime::Request>],
    steady: &[runtime::Request],
) -> ArmRow {
    let mut rt = Runtime::new(
        GpuSpec::v100(),
        RuntimeConfig {
            tune: TuneConfig {
                enabled: true,
                epsilon: BENCH_EPSILON,
                formats,
                ..TuneConfig::default()
            },
            ..RuntimeConfig::default()
        },
    );
    let mut warmup_rounds = 0;
    for stream in warmup {
        rt.serve(stream).expect("tuned warmup");
        warmup_rounds += 1;
        if rt.tune_stats().promotes >= matrices.len() {
            break;
        }
    }
    let stats = rt.tune_stats();
    let steady_out = rt.serve(steady).expect("tuned steady");
    let (winner_schedule, winner_format) = winner_of(&mut rt, &matrices[0]);
    ArmRow {
        arm: label.to_string(),
        winner_schedule,
        winner_format,
        p50_ms: service_quantile(&steady_out, 0.50),
        p99_ms: service_quantile(&steady_out, 0.99),
        explores: stats.explores,
        promotes: stats.promotes,
        warmup_rounds,
    }
}

fn run_family(index: usize, name: &str, scale: f64) -> FamilyResult {
    let matrices = corpus(name, scale);
    let warmup_n = ((WARMUP_REQUESTS as f64 * scale) as usize).max(30);
    let steady_n = ((STEADY_REQUESTS as f64 * scale) as usize).max(40);
    let seed = 7_000 + index as u64;
    let warmup: Vec<Vec<runtime::Request>> = (0..MAX_WARMUP_ROUNDS)
        .map(|round| workload(&matrices, warmup_n, seed + 10 * round as u64))
        .collect();
    let steady = workload(&matrices, steady_n, seed + 999);
    let hottest = &matrices[0]; // zipf rank 0 — the head of the skew

    let mut fixed = Runtime::new(GpuSpec::v100(), RuntimeConfig::default());
    // One warm-up stream fills the static plan cache.
    fixed.serve(&warmup[0]).expect("static warmup");
    let static_steady = fixed.serve(&steady).expect("static steady");
    let static_arm = ArmRow {
        arm: "serve-static".into(),
        winner_schedule: loops::heuristic::Heuristic::paper()
            .select(hottest.rows(), hottest.cols(), hottest.nnz())
            .to_string(),
        winner_format: FormatKind::Csr.to_string(),
        p50_ms: service_quantile(&static_steady, 0.50),
        p99_ms: service_quantile(&static_steady, 0.99),
        explores: 0,
        promotes: 0,
        warmup_rounds: 1,
    };

    let sched_arm = run_tuned_arm("serve-sched-tuner", false, &matrices, &warmup, &steady);
    let widened_arm = run_tuned_arm("serve-widened-tuner", true, &matrices, &warmup, &steady);

    FamilyResult {
        family: name.to_string(),
        matrices: matrices.len(),
        cells: grid(hottest),
        arms: vec![static_arm, sched_arm, widened_arm],
    }
}

fn render_csv(rows: &[FamilyResult], out_dir: &str) -> std::io::Result<std::path::PathBuf> {
    let mut w = crate::csv::CsvWriter::create(
        out_dir,
        "format_ablation.csv",
        "family,record,schedule,format,cost_ms,convert_ms,p50_ms,p99_ms,explores,promotes,warmup_rounds",
    )?;
    for r in rows {
        for c in &r.cells {
            w.row(&format!(
                "{},cell,{},{},{:.9},{:.9},,,,,",
                r.family, c.schedule, c.format, c.cost_ms, c.convert_ms
            ))?;
        }
        for a in &r.arms {
            w.row(&format!(
                "{},{},{},{},,,{:.9},{:.9},{},{},{}",
                r.family,
                a.arm,
                a.winner_schedule,
                a.winner_format,
                a.p50_ms,
                a.p99_ms,
                a.explores,
                a.promotes,
                a.warmup_rounds
            ))?;
        }
    }
    w.finish()
}

/// Run the ablation and write `format_ablation.csv` under the CLI's
/// output directory. `--limit N` scales the corpus and streams down
/// (N = 10 is full size). At full scale the powerlaw family's widened
/// tuner must beat the schedule-only tuner's p50 — the format axis has
/// to earn its exploration cost — and the run fails loudly if it does
/// not.
pub fn run(cli: &Cli) -> std::io::Result<FormatAblationOutputs> {
    let families = ["banded", "powerlaw", "uniform"];
    let scale = scale_of(cli);
    let mut rows = Vec::with_capacity(families.len());
    for (i, name) in families.iter().enumerate() {
        let r = run_family(i, name, scale);
        let sched = r.arm("serve-sched-tuner");
        let widened = r.arm("serve-widened-tuner");
        println!(
            "{:<9} static p50 {:.5} ms | sched {} p50 {:.5} ms | widened {}@{} p50 {:.5} ms | \
             widened speedup {:.4}x",
            r.family,
            r.arm("serve-static").p50_ms,
            sched.winner_schedule,
            sched.p50_ms,
            widened.winner_schedule,
            widened.winner_format,
            widened.p50_ms,
            r.widened_speedup_p50(),
        );
        rows.push(r);
    }
    if scale >= 1.0 {
        let powerlaw = rows
            .iter()
            .find(|r| r.family == "powerlaw")
            .expect("powerlaw family present");
        assert!(
            powerlaw.widened_speedup_p50() > 1.0,
            "widened tuner must beat the schedule-only tuner's p50 on the powerlaw family \
             (sched {} ms vs widened {} ms)",
            powerlaw.arm("serve-sched-tuner").p50_ms,
            powerlaw.arm("serve-widened-tuner").p50_ms,
        );
    }
    let path = render_csv(&rows, &cli.out_dir)?;
    println!("wrote {}", path.display());
    Ok(FormatAblationOutputs {
        csv: path,
        families: rows,
    })
}
