//! Terminal scatter plots — a stand-in for the artifact's Jupyter
//! notebook, so every figure binary can show its shape inline.

/// A character-grid scatter plot with optional log axes.
#[derive(Debug)]
pub struct ScatterPlot {
    width: usize,
    height: usize,
    x_log: bool,
    y_log: bool,
    series: Vec<(char, Vec<(f64, f64)>)>,
    x_label: String,
    y_label: String,
}

impl ScatterPlot {
    /// A `width × height` plot canvas.
    pub fn new(width: usize, height: usize) -> Self {
        Self {
            width: width.max(16),
            height: height.max(6),
            x_log: false,
            y_log: false,
            series: Vec::new(),
            x_label: String::new(),
            y_label: String::new(),
        }
    }

    /// Use logarithmic x (and optionally y) scaling; non-positive points
    /// are dropped on log axes.
    pub fn log_axes(mut self, x_log: bool, y_log: bool) -> Self {
        self.x_log = x_log;
        self.y_log = y_log;
        self
    }

    /// Axis labels shown under/over the canvas.
    pub fn labels(mut self, x: &str, y: &str) -> Self {
        self.x_label = x.into();
        self.y_label = y.into();
        self
    }

    /// Add a series drawn with `symbol` (later series draw over earlier).
    pub fn series(mut self, symbol: char, points: impl IntoIterator<Item = (f64, f64)>) -> Self {
        self.series.push((symbol, points.into_iter().collect()));
        self
    }

    fn tx(&self, v: f64) -> Option<f64> {
        if self.x_log {
            (v > 0.0).then(|| v.log10())
        } else {
            Some(v)
        }
    }

    fn ty(&self, v: f64) -> Option<f64> {
        if self.y_log {
            (v > 0.0).then(|| v.log10())
        } else {
            Some(v)
        }
    }

    /// Render to a multi-line string (empty series → a note).
    pub fn render(&self) -> String {
        let pts: Vec<(usize, f64, f64)> = self
            .series
            .iter()
            .enumerate()
            .flat_map(|(i, (_, ps))| {
                ps.iter()
                    .filter_map(move |&(x, y)| Some((i, self.tx(x)?, self.ty(y)?)))
            })
            .collect();
        if pts.is_empty() {
            return "(no plottable points)\n".into();
        }
        let (mut x0, mut x1, mut y0, mut y1) = (f64::MAX, f64::MIN, f64::MAX, f64::MIN);
        for &(_, x, y) in &pts {
            x0 = x0.min(x);
            x1 = x1.max(x);
            y0 = y0.min(y);
            y1 = y1.max(y);
        }
        if (x1 - x0).abs() < 1e-12 {
            x1 = x0 + 1.0;
        }
        if (y1 - y0).abs() < 1e-12 {
            y1 = y0 + 1.0;
        }
        let mut grid = vec![vec![' '; self.width]; self.height];
        for &(si, x, y) in &pts {
            let cx = ((x - x0) / (x1 - x0) * (self.width - 1) as f64).round() as usize;
            let cy = ((y - y0) / (y1 - y0) * (self.height - 1) as f64).round() as usize;
            grid[self.height - 1 - cy][cx] = self.series[si].0;
        }
        let back = |v: f64, log: bool| if log { 10f64.powf(v) } else { v };
        let mut out = String::new();
        if !self.y_label.is_empty() {
            out.push_str(&format!("{}\n", self.y_label));
        }
        for (r, row) in grid.iter().enumerate() {
            let yv = back(y1 - (y1 - y0) * r as f64 / (self.height - 1) as f64, self.y_log);
            let tick = if r == 0 || r == self.height - 1 || r == self.height / 2 {
                format!("{yv:>9.3}")
            } else {
                " ".repeat(9)
            };
            out.push_str(&format!("{tick} |{}|\n", row.iter().collect::<String>()));
        }
        out.push_str(&format!(
            "{:>9}  {:<w$.3e}{:>r$.3e}\n",
            "",
            back(x0, self.x_log),
            back(x1, self.x_log),
            w = self.width / 2,
            r = self.width - self.width / 2,
        ));
        if !self.x_label.is_empty() {
            out.push_str(&format!("{:>w$}\n", self.x_label, w = 11 + self.width / 2));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_points_in_roughly_the_right_corner() {
        let p = ScatterPlot::new(40, 10)
            .series('o', [(1.0, 1.0), (100.0, 100.0)])
            .render();
        let lines: Vec<&str> = p.lines().collect();
        // Low-left point on the bottom row, high-right on the top row.
        assert!(lines[0].contains('o') || lines[1].contains('o'));
        assert!(lines[9].contains('o') || lines[8].contains('o'));
    }

    #[test]
    fn log_axes_drop_nonpositive_points() {
        let p = ScatterPlot::new(30, 8)
            .log_axes(true, true)
            .series('x', [(0.0, 5.0), (-3.0, 1.0)])
            .render();
        assert!(p.contains("no plottable points"));
    }

    #[test]
    fn multiple_series_use_their_symbols() {
        let p = ScatterPlot::new(30, 8)
            .series('a', [(1.0, 1.0)])
            .series('b', [(10.0, 10.0)])
            .render();
        assert!(p.contains('a'));
        assert!(p.contains('b'));
    }

    #[test]
    fn degenerate_single_point_does_not_panic() {
        let p = ScatterPlot::new(20, 6).series('*', [(5.0, 5.0)]).render();
        assert!(p.contains('*'));
    }

    #[test]
    fn labels_appear() {
        let p = ScatterPlot::new(20, 6)
            .labels("nnz", "speedup")
            .series('*', [(1.0, 2.0), (2.0, 1.0)])
            .render();
        assert!(p.contains("nnz"));
        assert!(p.contains("speedup"));
    }
}
