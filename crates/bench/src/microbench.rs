//! Minimal micro-benchmark harness (std-only stand-in for criterion,
//! which is unavailable offline). Each measurement runs a warm-up pass,
//! then times `iters` batches and reports the median batch time. Intended
//! for keeping the *host* simulation fast — simulated GPU times come from
//! the experiment binaries, not from here.

use std::time::Instant;

/// Time `f` and print a `name: median ± spread` line.
///
/// Runs one warm-up call, then `samples` timed calls, reporting the median
/// and the min..max spread in milliseconds.
pub fn bench<R, F: FnMut() -> R>(name: &str, samples: usize, mut f: F) {
    let samples = samples.max(1);
    std::hint::black_box(f()); // warm-up
    let mut times_ms: Vec<f64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times_ms.sort_by(|a, b| a.total_cmp(b));
    let median = times_ms[times_ms.len() / 2];
    println!(
        "{name:<40} {median:>10.3} ms  (min {:.3}, max {:.3}, n={samples})",
        times_ms[0],
        times_ms[times_ms.len() - 1]
    );
}
