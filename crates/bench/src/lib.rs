//! # bench — the experiment harness
//!
//! One binary per table/figure of the paper's evaluation (§6), plus
//! ablations. Every binary writes a CSV under `results/` in the artifact's
//! format (`kernel,dataset,rows,cols,nnzs,elapsed`, elapsed in simulated
//! milliseconds) and prints the headline statistics the paper reports.
//!
//! | binary | reproduces |
//! |---|---|
//! | `fig2` | Figure 2 — abstraction overhead vs CUB |
//! | `fig3` | Figure 3 — 3 schedules vs cuSparse landscape |
//! | `fig4` | Figure 4 — heuristic-combined speedup vs cuSparse |
//! | `table1` | Table 1 — lines of kernel code |
//! | `ablation_group_size` | group-size sweep (§5.2.3) |
//! | `ablation_heuristic` | α/β threshold sweep (§6.2) |
//! | `ablation_overhead` | abstraction-overhead decomposition (§6.1) |
//! | `ablation_devices` | V100/A100/RTX3090/MI100 portability (§5.2.3) |
//! | `ablation_multi_gpu` | 1–8 device scaling (§8 future work) |
//! | `ablation_dynamic` | static vs dynamic work-queue scheduling |
//! | `locality_report` | schedule-order L2 hit rates (§8 future work) |
//! | `timeline` | per-SM busy profile per schedule (+ `timeline.csv`) |
//! | `profile` | Chrome-trace timelines of a skewed SpMV and a serve run |
//! | `autotune_bench` | static heuristic vs online autotuner steady state |
//! | `shard_bench` | sharded split-mode serving, 1–16 shard scaling |
//! | `telemetry_gate` | windowed-metrics regression gate vs pinned baseline |
//! | `corpus_stats` | corpus structure/imbalance inventory |
//! | `run_all` | every experiment in sequence (the artifact's `run.sh`) |
//!
//! Common flags: `--limit N` (run the first N corpus entries by the
//! deterministic subset rule), `--out DIR` (default `results/`).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod autotune;
pub mod cli;
pub mod csv;
pub mod format_ablation;
pub mod loc;
pub mod microbench;
pub mod plot;
pub mod profile;
pub mod runner;
pub mod shardbench;
pub mod summary;
pub mod telemetry;

pub use cli::Cli;
pub use csv::CsvWriter;
pub use plot::ScatterPlot;
pub use runner::{for_each_corpus_matrix, validate_against_reference};
pub use summary::{geomean, quantile};
