//! Table 1: lines of kernel-contributing code, CUB vs the framework.
//!
//! Paper's numbers: merge-path 503 (CUB) vs 36 (ours); thread-mapped 22
//! vs 21; group-mapped 30, with warp- and block-mapped free. Our counts
//! come from `LOC-BEGIN/END` regions in the actual sources (see
//! `bench::loc`); CUB's published numbers are quoted alongside.

use bench::loc::count_region_in_file;
use bench::{Cli, CsvWriter};
use std::path::Path;

fn main() {
    let cli = Cli::parse();
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let count = |rel: &str, tag: &str| {
        count_region_in_file(root.join(rel), tag)
            .unwrap_or_else(|| panic!("LOC region '{tag}' missing in {rel}"))
    };

    let ours_merge = count("crates/core/src/schedule/merge_path.rs", "merge_path");
    let ours_thread = count("crates/core/src/schedule/thread_mapped.rs", "thread_mapped");
    let ours_group = count("crates/core/src/schedule/group_mapped.rs", "group_mapped");
    let ours_queue = count("crates/core/src/schedule/work_queue.rs", "work_queue");
    let ours_lrb = count("crates/core/src/schedule/lrb.rs", "lrb");
    let cub_merge = count("crates/baselines/src/cub_like.rs", "cub_merge_path");
    let cub_thread = count("crates/baselines/src/cub_like.rs", "cub_thread_mapped");

    let rows: Vec<(&str, String, String, usize)> = vec![
        ("merge-path", format!("{cub_merge}"), "503".into(), ours_merge),
        ("thread-mapped", format!("{cub_thread}"), "22".into(), ours_thread),
        ("group-mapped", "N/A".into(), "N/A".into(), ours_group),
        ("warp-mapped", "N/A".into(), "N/A".into(), 0),
        ("block-mapped", "N/A".into(), "N/A".into(), 0),
        ("work-queue*", "N/A".into(), "N/A".into(), ours_queue),
        ("lrb*", "N/A".into(), "N/A".into(), ours_lrb),
    ];

    let mut csv = CsvWriter::create(&cli.out_dir, "table1.csv", "schedule,baseline_loc,cub_paper_loc,ours_loc")
        .expect("create table1.csv");
    println!("== Table 1: lines of kernel code ==");
    println!(
        "{:<16} {:>14} {:>12} {:>10}",
        "schedule", "baseline here", "CUB (paper)", "ours"
    );
    for (name, here, paper, ours) in &rows {
        let ours_str = if *ours == 0 {
            format!("{ours_group} (free)")
        } else {
            ours.to_string()
        };
        println!("{name:<16} {here:>14} {paper:>12} {ours_str:>10}");
        csv.row(&format!("{name},{here},{paper},{ours}")).unwrap();
    }
    let path = csv.finish().unwrap();
    println!();
    println!(
        "merge-path ratio (baseline here / ours): {:.1}x   (paper: 14x vs CUB's 503)",
        cub_merge as f64 / ours_merge as f64
    );
    println!("note: warp-/block-mapped reuse the group-mapped region verbatim (constructors only).");
    println!("      * beyond the paper's Table 1: the dynamic and LRB schedules added here.");
    println!("csv: {}", path.display());
}
