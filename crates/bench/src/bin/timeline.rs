//! Per-SM load profile ("timeline") for contrasting schedules on one
//! matrix — the device-level picture behind the utilization numbers: a
//! thread-mapped launch on a skewed matrix shows a few towering SMs; the
//! balanced schedules show a flat wall.

use bench::{Cli, CsvWriter};
use loops::schedule::ScheduleKind;
use simt::GpuSpec;

fn bar_chart(label: &str, sm_times: &[f64], util: f64) {
    let max = sm_times.iter().copied().fold(f64::MIN, f64::max).max(1e-12);
    const WIDTH: usize = 60;
    // Bucket SMs into WIDTH columns (mean per bucket), render as rows.
    let per = sm_times.len().div_ceil(WIDTH).max(1);
    let cols: Vec<f64> = sm_times
        .chunks(per)
        .map(|c| c.iter().sum::<f64>() / c.len() as f64)
        .collect();
    const ROWS: usize = 8;
    println!("\n{label}: SM busy profile (max {max:.4} ms, utilization {:.0}%)", util * 100.0);
    for r in (1..=ROWS).rev() {
        let level = r as f64 / ROWS as f64;
        let row: String = cols
            .iter()
            .map(|&v| if v / max >= level - 1e-12 { '#' } else { ' ' })
            .collect();
        println!("  |{row}|");
    }
    println!("  +{}+  (each column ≈ {per} SM{})", "-".repeat(cols.len()), if per > 1 { "s" } else { "" });
}

fn main() {
    let cli = Cli::parse();
    let spec = GpuSpec::v100();
    // A degree-sorted power-law matrix: heavy rows clustered at the top —
    // maximal stress for static row-order schedules.
    let a = {
        let p = sparse::gen::powerlaw(200_000, 200_000, 2_400_000, 1.7, 9);
        let order = sparse::reorder::degree_sort(&p);
        sparse::reorder::permute_rows(&p, &order)
    };
    let x = sparse::dense::test_vector(a.cols());
    println!(
        "matrix: degree-sorted power-law, {}x{}, {} nnz (CV {:.2})",
        a.rows(),
        a.cols(),
        a.nnz(),
        sparse::RowStats::of(&a).cv
    );
    let mut csv = CsvWriter::create(&cli.out_dir, "timeline.csv", "schedule,sm_id,busy_ms")
        .expect("create timeline.csv");
    // Schedules arrive as names and round-trip through `FromStr` — the
    // same parsing any CLI flag or config file would use.
    for kind in ["thread-mapped", "warp-mapped", "merge-path"]
        .map(|s| s.parse::<ScheduleKind>().expect("valid schedule name"))
    {
        let run = kernels::spmv(&spec, &a, &x, kind).expect("spmv");
        bar_chart(
            &kind.to_string(),
            &run.report.timing.sm_times_ms,
            run.report.timing.sm_utilization,
        );
        for (sm, &busy) in run.report.timing.sm_times_ms.iter().enumerate() {
            csv.row(&format!("{kind},{sm},{busy}")).expect("write timeline row");
        }
    }
    let path = csv.finish().expect("flush timeline.csv");
    println!("\nFlat wall = balanced device; towers = long-pole SMs the schedule failed to feed.");
    println!("per-SM profile written to {}", path.display());
}
