//! Ablation E: multi-GPU scaling (paper §8's future work, implemented).
//!
//! SpMV across 1–8 simulated V100s under both cross-device partitioners.
//! Uses purpose-built *node-scale* matrices (tens of millions of
//! nonzeros): below that, broadcasting `x` over the interconnect costs
//! more than the kernel saves, and multi-GPU SpMV genuinely does not pay
//! — the harness prints that break-even behaviour too. Equal *rows* per
//! device is thread-mapped writ large; equal *nonzeros* is merge-path's
//! insight across the GPU boundary — the paper's load-balancing story,
//! one level up.

use bench::{Cli, CsvWriter};
use kernels::spmv_multi::{spmv_multi, Partition};
use loops::schedule::ScheduleKind;
use simt::MultiGpuSpec;
use sparse::Csr;

fn workloads() -> Vec<(&'static str, Csr<f32>)> {
    vec![
        ("uniform_1.5Mx16", sparse::gen::uniform(1_500_000, 1_500_000, 24_000_000, 1)),
        ("powerlaw_1Mx16", sparse::gen::powerlaw(1_000_000, 1_000_000, 16_000_000, 1.8, 2)),
        ("banded_3M_bw3", sparse::gen::banded(3_000_000, 3, 3)),
        ("smalltest_64kx16", sparse::gen::uniform(65_000, 65_000, 1_000_000, 4)),
    ]
}

fn main() {
    let cli = Cli::parse();
    let mut csv = CsvWriter::create(
        &cli.out_dir,
        "ablation_multi_gpu.csv",
        "devices,partition,dataset,rows,cols,nnzs,elapsed,imbalance,speedup_vs_1",
    )
    .expect("create csv");
    let device_counts = [1u32, 2, 4, 8];
    println!("== Ablation E: multi-GPU SpMV scaling (speedup vs 1 device) ==");
    for (name, a) in workloads() {
        eprintln!("  {name}: {} nnz", a.nnz());
        let x = sparse::dense::test_vector(a.cols());
        let t1 = spmv_multi(
            &MultiGpuSpec::dgx_v100(1),
            &a,
            &x,
            ScheduleKind::MergePath,
            Partition::NnzBalanced,
        )
        .expect("1-device run")
        .report
        .elapsed_ms;
        println!("\n{name} ({} nnz; 1-device {:.3} ms):", a.nnz(), t1);
        println!("{:<10} {:>14} {:>14} {:>18}", "devices", "row-blocks", "nnz-balanced", "imbalance (rows)");
        for &d in &device_counts {
            let mut line = format!("{d:<10}");
            let mut row_imb = 0.0;
            for (pname, p) in [("rows", Partition::RowBlocks), ("nnz", Partition::NnzBalanced)] {
                let run = spmv_multi(&MultiGpuSpec::dgx_v100(d), &a, &x, ScheduleKind::MergePath, p)
                    .expect("multi run");
                let speedup = t1 / run.report.elapsed_ms;
                csv.row(&format!(
                    "{d},{pname},{name},{},{},{},{},{:.3},{:.3}",
                    a.rows(),
                    a.cols(),
                    a.nnz(),
                    run.report.elapsed_ms,
                    run.report.device_imbalance(),
                    speedup
                ))
                .unwrap();
                line.push_str(&format!(" {speedup:>12.2}x"));
                if pname == "rows" {
                    row_imb = run.report.device_imbalance();
                }
            }
            line.push_str(&format!(" {row_imb:>17.2}"));
            println!("{line}");
        }
    }
    let path = csv.finish().unwrap();
    println!("\n(x-broadcast + y-gather over NVLink included; small matrices show the break-even)");
    println!("csv: {}", path.display());
}
