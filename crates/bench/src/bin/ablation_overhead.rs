//! Ablation C (§6.1): decompose the abstraction's overhead.
//!
//! Runs the framework's merge-path SpMV against the CUB-like fused kernel
//! (identical algorithm, hand-interleaved) and splits their difference
//! into the three channels the simulator models:
//!
//! * **issue work** — the per-iteration range charge and per-span
//!   bookkeeping (visible only when compute-bound);
//! * **memory traffic** — the extra per-span offset reads the decoupled
//!   schedule performs;
//! * **elapsed** — what actually survives the roofline max (what Figure 2
//!   reports).
//!
//! Additionally re-runs the framework kernel under the fused cost model
//! (range charge forced to zero) to isolate the pure iterator-indirection
//! term.

use bench::{summary, Cli, CsvWriter};
use loops::schedule::ScheduleKind;
use simt::{CostModel, GpuSpec};

fn main() {
    let mut cli = Cli::parse();
    if cli.limit.is_none() {
        cli.limit = Some(80);
    }
    let spec = GpuSpec::v100();
    let standard = CostModel::standard();
    let fused = CostModel::fused();
    let mut csv = CsvWriter::create(
        &cli.out_dir,
        "ablation_overhead.csv",
        "dataset,rows,cols,nnzs,elapsed_fw,elapsed_cub,units_fw,units_cub,bytes_fw,bytes_cub,range_units",
    )
    .expect("create csv");
    let (mut r_elapsed, mut r_units, mut r_bytes, mut range_fracs) =
        (Vec::new(), Vec::new(), Vec::new(), Vec::new());
    eprintln!("ablation C: framework vs fused decomposition");
    bench::for_each_corpus_matrix(&cli, |ds, a, x| {
        if a.cols() == 1 {
            return; // CUB's fast path is a different algorithm; skip here.
        }
        let fw = kernels::spmv::spmv_with_model(
            &spec,
            &standard,
            a,
            x,
            ScheduleKind::MergePath,
            kernels::spmv::DEFAULT_BLOCK,
        )
        .expect("framework spmv");
        let fw_nocharge = kernels::spmv::spmv_with_model(
            &spec,
            &fused,
            a,
            x,
            ScheduleKind::MergePath,
            kernels::spmv::DEFAULT_BLOCK,
        )
        .expect("framework spmv, fused model");
        let cub = baselines::cub_spmv(&spec, a, x).expect("cub");
        let range_units = fw.report.timing.total_units - fw_nocharge.report.timing.total_units;
        csv.row(&format!(
            "{},{},{},{},{},{},{},{},{},{},{}",
            ds.name,
            a.rows(),
            a.cols(),
            a.nnz(),
            fw.report.elapsed_ms(),
            cub.report.elapsed_ms(),
            fw.report.timing.total_units,
            cub.report.timing.total_units,
            fw.report.mem.total_bytes(),
            cub.report.mem.total_bytes(),
            range_units,
        ))
        .unwrap();
        r_elapsed.push(fw.report.elapsed_ms() / cub.report.elapsed_ms());
        r_units.push(fw.report.timing.total_units / cub.report.timing.total_units.max(1.0));
        r_bytes.push(fw.report.mem.total_bytes() as f64 / cub.report.mem.total_bytes().max(1) as f64);
        if fw.report.timing.total_units > 0.0 {
            range_fracs.push(1.0 + range_units.max(0.0) / fw.report.timing.total_units);
        }
    });
    let path = csv.finish().unwrap();

    println!("== Ablation C: abstraction overhead decomposition (framework merge-path vs fused CUB-like) ==");
    println!("datasets:                      {}", r_elapsed.len());
    println!(
        "issue-work overhead (geomean): {:+.1}%",
        (summary::geomean(&r_units) - 1.0) * 100.0
    );
    println!(
        "  of which pure range charge:  {:+.1}%",
        (summary::geomean(&range_fracs) - 1.0) * 100.0
    );
    println!(
        "memory-traffic overhead:       {:+.1}%  (per-span offset reads)",
        (summary::geomean(&r_bytes) - 1.0) * 100.0
    );
    println!(
        "elapsed overhead:              {:+.1}%  (what survives the roofline; Figure 2's number)",
        (summary::geomean(&r_elapsed) - 1.0) * 100.0
    );
    println!("csv: {}", path.display());
}
