//! Figure 2: abstraction overhead — framework merge-path SpMV vs a
//! CUB-like hardwired merge-path, across the corpus.
//!
//! Paper's claims: runtimes almost perfectly match; geomean slowdown 2.5%;
//! 92% of datasets reach ≥ 90% of CUB's performance; CUB wins clearly
//! only on single-column (sparse-vector) matrices via its specialized
//! thread-mapped heuristic.

use bench::{summary, Cli, CsvWriter};
use loops::schedule::ScheduleKind;
use simt::GpuSpec;

fn main() {
    let cli = Cli::parse();
    let spec = GpuSpec::v100();
    let mut csv = CsvWriter::create(&cli.out_dir, "fig2.csv", "kernel,dataset,rows,cols,nnzs,elapsed")
        .expect("create fig2.csv");
    let mut ratios = Vec::new(); // ours / cub
    let mut single_col_ratios = Vec::new();
    let mut pts_ours = Vec::new();
    let mut pts_cub = Vec::new();
    eprintln!("fig2: framework merge-path vs CUB-like (hardwired)");
    bench::for_each_corpus_matrix(&cli, |ds, a, x| {
        let ours = kernels::spmv(&spec, a, x, ScheduleKind::MergePath).expect("framework spmv");
        let cub = baselines::cub_spmv(&spec, a, x).expect("cub spmv");
        if cli.validate {
            bench::validate_against_reference(&ds.name, a, x, &ours.y);
            bench::validate_against_reference(&ds.name, a, x, &cub.y);
        }
        let (t_ours, t_cub) = (ours.report.elapsed_ms(), cub.report.elapsed_ms());
        csv.spmv_row("merge-path", &ds.name, a.rows(), a.cols(), a.nnz(), t_ours)
            .unwrap();
        csv.spmv_row("cub", &ds.name, a.rows(), a.cols(), a.nnz(), t_cub)
            .unwrap();
        pts_ours.push((a.nnz() as f64, t_ours));
        pts_cub.push((a.nnz() as f64, t_cub));
        let ratio = t_ours / t_cub;
        if a.cols() == 1 {
            single_col_ratios.push(ratio);
        } else {
            ratios.push(ratio);
        }
    });
    let path = csv.finish().unwrap();

    let all: Vec<f64> = ratios
        .iter()
        .chain(&single_col_ratios)
        .copied()
        .collect();
    let slowdown = summary::geomean(&all) - 1.0;
    let at_90 = summary::fraction(&all, |r| r <= 1.0 / 0.9);
    println!("== Figure 2: abstraction overhead (ours merge-path vs CUB) ==");
    println!("datasets:                      {}", all.len());
    println!(
        "geomean slowdown vs CUB:       {:+.1}%   (paper: +2.5%)",
        slowdown * 100.0
    );
    println!(
        "datasets at >=90% of CUB perf: {:.0}%   (paper: 92%)",
        at_90 * 100.0
    );
    if !ratios.is_empty() {
        println!(
            "geomean slowdown, multi-col:   {:+.1}%",
            (summary::geomean(&ratios) - 1.0) * 100.0
        );
    }
    if !single_col_ratios.is_empty() {
        println!(
            "geomean slowdown, single-col:  {:+.1}%  (CUB's thread-mapped heuristic)",
            (summary::geomean(&single_col_ratios) - 1.0) * 100.0
        );
    }
    println!();
    println!("runtime vs nnz (log-log; o = ours, c = CUB — the paper's Figure 2 scatter):");
    print!(
        "{}",
        bench::ScatterPlot::new(64, 16)
            .log_axes(true, true)
            .labels("nnz", "elapsed ms (simulated)")
            .series('c', pts_cub)
            .series('o', pts_ours)
            .render()
    );
    println!("csv: {}", path.display());
}
