//! Figure 4: the heuristic-combined SpMV vs the cuSparse-like baseline.
//!
//! Paper's claims: combining the schedules with the α/β heuristic
//! (merge-path unless the matrix is small, §6.2) yields a geomean speedup
//! of 2.7× over cuSparse with a peak of 39×.

use bench::{summary, Cli, CsvWriter};
use simt::GpuSpec;

fn main() {
    let cli = Cli::parse();
    let spec = GpuSpec::v100();
    let heuristic = loops::Heuristic::paper();
    let mut csv = CsvWriter::create(&cli.out_dir, "fig4.csv", "kernel,dataset,rows,cols,nnzs,elapsed,speedup")
        .expect("create fig4.csv");
    let mut speedups = Vec::new();
    let mut points = Vec::new();
    let mut peak: (f64, String) = (0.0, String::new());
    eprintln!("fig4: heuristic-combined SpMV vs cuSparse-like");
    bench::for_each_corpus_matrix(&cli, |ds, a, x| {
        let kind = heuristic.select(a.rows(), a.cols(), a.nnz());
        let ours = kernels::spmv(&spec, a, x, kind).expect("framework spmv");
        let base = baselines::cusparse_spmv(&spec, a, x).expect("cusparse spmv");
        if cli.validate {
            bench::validate_against_reference(&ds.name, a, x, &ours.y);
        }
        let (t_ours, t_base) = (ours.report.elapsed_ms(), base.report.elapsed_ms());
        let speedup = t_base / t_ours;
        csv.row(&format!(
            "heuristic[{}],{},{},{},{},{},{:.4}",
            kind,
            ds.name,
            a.rows(),
            a.cols(),
            a.nnz(),
            t_ours,
            speedup
        ))
        .unwrap();
        if speedup > peak.0 {
            peak = (speedup, ds.name.clone());
        }
        points.push((a.nnz() as f64, speedup));
        speedups.push(speedup);
    });
    let path = csv.finish().unwrap();

    println!("== Figure 4: heuristic-combined SpMV vs cuSparse-like ==");
    println!("datasets:           {}", speedups.len());
    println!(
        "geomean speedup:    {:.2}x   (paper: 2.7x)",
        summary::geomean(&speedups)
    );
    println!("peak speedup:       {:.1}x on {}   (paper: 39x)", peak.0, peak.1);
    println!(
        "datasets faster:    {:.0}%",
        summary::fraction(&speedups, |s| s > 1.0) * 100.0
    );
    println!(
        "p10 / median / p90: {:.2}x / {:.2}x / {:.2}x",
        summary::quantile(&speedups, 0.1),
        summary::quantile(&speedups, 0.5),
        summary::quantile(&speedups, 0.9)
    );
    println!();
    println!("speedup vs nnz (log-log; the paper's Figure 4 scatter):");
    print!(
        "{}",
        bench::ScatterPlot::new(64, 16)
            .log_axes(true, true)
            .labels("nnz", "speedup vs cuSparse-like (x)")
            .series('*', points)
            .render()
    );
    println!("csv: {}", path.display());
}
