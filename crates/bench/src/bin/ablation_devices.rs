//! Ablation D: device portability (paper §5.2.3's portability claim and
//! §2's "extensible to new architectures" spirit).
//!
//! Re-runs the Figure 4 heuristic experiment on four simulated devices —
//! including an AMD-style 64-wide-wavefront part — without touching a
//! line of schedule or kernel code. The warp-mapped schedule silently
//! becomes 64-wide on MI100 because it is group-mapped at `spec.warp_size`.

use bench::{summary, Cli, CsvWriter};
use simt::GpuSpec;

fn main() {
    let mut cli = Cli::parse();
    if cli.limit.is_none() {
        cli.limit = Some(80);
    }
    let specs = [
        GpuSpec::v100(),
        GpuSpec::a100(),
        GpuSpec::rtx3090(),
        GpuSpec::mi100(),
    ];
    let h = loops::Heuristic::paper();
    let mut csv = CsvWriter::create(
        &cli.out_dir,
        "ablation_devices.csv",
        "device,dataset,rows,cols,nnzs,elapsed,speedup",
    )
    .expect("create csv");
    let mut per_device: Vec<(String, Vec<f64>)> =
        specs.iter().map(|s| (s.name.clone(), Vec::new())).collect();
    eprintln!("ablation D: heuristic SpMV across device generations");
    bench::for_each_corpus_matrix(&cli, |ds, a, x| {
        for (i, spec) in specs.iter().enumerate() {
            let kind = h.select(a.rows(), a.cols(), a.nnz());
            let ours = kernels::spmv(spec, a, x, kind).expect("spmv");
            let base = baselines::cusparse_spmv(spec, a, x).expect("cusparse");
            if cli.validate {
                bench::validate_against_reference(&ds.name, a, x, &ours.y);
            }
            let speedup = base.report.elapsed_ms() / ours.report.elapsed_ms();
            csv.row(&format!(
                "{},{},{},{},{},{},{:.4}",
                spec.name,
                ds.name,
                a.rows(),
                a.cols(),
                a.nnz(),
                ours.report.elapsed_ms(),
                speedup
            ))
            .unwrap();
            per_device[i].1.push(speedup);
        }
    });
    let path = csv.finish().unwrap();

    println!("== Ablation D: heuristic SpMV speedup vs cuSparse-like, per device ==");
    println!("{:<12} {:>10} {:>16} {:>10}", "device", "warp", "geomean speedup", "p90");
    for ((name, s), spec) in per_device.iter().zip(&specs) {
        println!(
            "{:<12} {:>10} {:>15.2}x {:>9.2}x",
            name,
            spec.warp_size,
            summary::geomean(s),
            summary::quantile(s, 0.9)
        );
    }
    println!("(identical schedule and kernel code on every row — portability is a constant)");
    println!("csv: {}", path.display());
}
