//! Figure 3: the complete performance landscape — SpMV with the
//! thread-mapped, merge-path, and group-mapped schedules, each compared
//! against the cuSparse-like baseline across the corpus.
//!
//! Paper's qualitative shape: no single schedule wins everywhere —
//! merge-path dominates large/imbalanced datasets, thread-mapped wins tiny
//! regular ones, group-mapped sits between — which is exactly the insight
//! the Figure 4 heuristic exploits.

use bench::{summary, Cli, CsvWriter};
use loops::schedule::ScheduleKind;
use simt::GpuSpec;
use std::collections::BTreeMap;

fn main() {
    let cli = Cli::parse();
    let spec = GpuSpec::v100();
    let mut csv = CsvWriter::create(&cli.out_dir, "fig3.csv", "kernel,dataset,rows,cols,nnzs,elapsed")
        .expect("create fig3.csv");
    let schedules = [
        ScheduleKind::ThreadMapped,
        ScheduleKind::MergePath,
        ScheduleKind::GroupMapped(32),
    ];
    // speedup-vs-cusparse samples per schedule, plus win counts.
    let mut speedups: BTreeMap<&str, Vec<f64>> = BTreeMap::new();
    let mut wins: BTreeMap<&str, usize> = BTreeMap::new();
    let mut datasets = 0usize;
    eprintln!("fig3: schedule landscape vs cuSparse-like");
    bench::for_each_corpus_matrix(&cli, |ds, a, x| {
        datasets += 1;
        let base = baselines::cusparse_spmv(&spec, a, x).expect("cusparse spmv");
        if cli.validate {
            bench::validate_against_reference(&ds.name, a, x, &base.y);
        }
        let t_base = base.report.elapsed_ms();
        csv.spmv_row("cusparse", &ds.name, a.rows(), a.cols(), a.nnz(), t_base)
            .unwrap();
        let mut best: Option<&str> = None;
        let mut best_t = f64::INFINITY;
        for kind in schedules {
            let name = kind.base_name();
            let run = kernels::spmv(&spec, a, x, kind).expect("framework spmv");
            if cli.validate {
                bench::validate_against_reference(&ds.name, a, x, &run.y);
            }
            let t = run.report.elapsed_ms();
            csv.spmv_row(name, &ds.name, a.rows(), a.cols(), a.nnz(), t)
                .unwrap();
            speedups.entry(name).or_default().push(t_base / t);
            if t < best_t {
                best_t = t;
                best = Some(name);
            }
        }
        *wins.entry(best.expect("three schedules ran")).or_default() += 1;
    });
    let path = csv.finish().unwrap();

    println!("== Figure 3: SpMV schedule landscape vs cuSparse-like ==");
    println!("datasets: {datasets}");
    println!("{:<16} {:>18} {:>10} {:>10} {:>14}", "schedule", "geomean speedup", "p10", "p90", "best-on (datasets)");
    for (name, s) in &speedups {
        println!(
            "{:<16} {:>17.2}x {:>9.2}x {:>9.2}x {:>14}",
            name,
            summary::geomean(s),
            summary::quantile(s, 0.1),
            summary::quantile(s, 0.9),
            wins.get(name).copied().unwrap_or(0)
        );
    }
    println!("(the spread across rows is the landscape: no schedule wins everywhere)");
    println!("csv: {}", path.display());
}
