//! Ablation B (§6.2): sweep the heuristic's α (rows/cols) and β (nnz)
//! thresholds and report the geomean speedup over the cuSparse-like
//! baseline at each point — showing how flat/sensitive the paper's
//! (α = 500, β = 10 000) choice is.

use bench::{summary, Cli, CsvWriter};
use loops::Heuristic;
use simt::GpuSpec;

const ALPHAS: [usize; 4] = [50, 200, 500, 2_000];
const BETAS: [usize; 4] = [1_000, 10_000, 50_000, 200_000];

fn main() {
    let mut cli = Cli::parse();
    if cli.limit.is_none() {
        cli.limit = Some(80);
    }
    let spec = GpuSpec::v100();
    let mut csv = CsvWriter::create(
        &cli.out_dir,
        "ablation_heuristic.csv",
        "alpha,beta,geomean_speedup",
    )
    .expect("create csv");

    // Cache per-dataset timings once: baseline + each pure schedule the
    // heuristic can pick.
    struct Entry {
        rows: usize,
        cols: usize,
        nnz: usize,
        t_base: f64,
        t_merge: f64,
        t_thread: f64,
        t_group: f64,
    }
    let mut entries = Vec::new();
    eprintln!("ablation B: caching per-dataset timings");
    bench::for_each_corpus_matrix(&cli, |_ds, a, x| {
        use loops::schedule::ScheduleKind as K;
        let t = |k| {
            kernels::spmv(&spec, a, x, k)
                .expect("spmv")
                .report
                .elapsed_ms()
        };
        entries.push(Entry {
            rows: a.rows(),
            cols: a.cols(),
            nnz: a.nnz(),
            t_base: baselines::cusparse_spmv(&spec, a, x)
                .expect("cusparse")
                .report
                .elapsed_ms(),
            t_merge: t(K::MergePath),
            t_thread: t(K::ThreadMapped),
            t_group: t(K::GroupMapped(32)),
        });
    });

    println!("== Ablation B: heuristic threshold sweep (geomean speedup vs cuSparse-like) ==");
    print!("{:>10}", "alpha\\beta");
    for b in BETAS {
        print!("{b:>12}");
    }
    println!();
    let mut best = (0.0f64, 0usize, 0usize);
    for a in ALPHAS {
        print!("{a:>10}");
        for b in BETAS {
            let h = Heuristic::new(a, b);
            let speedups: Vec<f64> = entries
                .iter()
                .map(|e| {
                    // Look up the pre-measured time for the schedule the
                    // candidate thresholds would pick.
                    let pick = h.select(e.rows, e.cols, e.nnz);
                    let t = if pick == loops::schedule::ScheduleKind::MergePath {
                        e.t_merge
                    } else if pick == loops::schedule::ScheduleKind::ThreadMapped {
                        e.t_thread
                    } else {
                        e.t_group
                    };
                    e.t_base / t
                })
                .collect();
            let g = summary::geomean(&speedups);
            csv.row(&format!("{a},{b},{g:.4}")).unwrap();
            if g > best.0 {
                best = (g, a, b);
            }
            print!("{g:>11.2}x");
        }
        println!();
    }
    let path = csv.finish().unwrap();
    println!();
    println!(
        "best: {:.2}x at alpha={}, beta={}   (paper uses alpha=500, beta=10000)",
        best.0, best.1, best.2
    );
    println!("csv: {}", path.display());
}
