//! Print the surrogate corpus' structure: per-family counts, nnz span,
//! and imbalance statistics — the evidence that the corpus covers the two
//! axes the paper's evaluation plots (total work × row-length skew).

use bench::{Cli, CsvWriter};
use sparse::RowStats;
use std::collections::BTreeMap;

fn main() {
    let cli = Cli::parse();
    let specs = match cli.limit {
        Some(n) => sparse::corpus::corpus_subset(n),
        None => sparse::corpus::suite_sparse_surrogate(),
    };
    let mut csv = CsvWriter::create(
        &cli.out_dir,
        "corpus_stats.csv",
        "dataset,family,rows,cols,nnz,mean_row,cv,gini,max_over_mean,empty_frac",
    )
    .expect("create csv");

    #[derive(Default)]
    struct Agg {
        count: usize,
        nnz_min: usize,
        nnz_max: usize,
        cv_min: f64,
        cv_max: f64,
    }
    let mut families: BTreeMap<String, Agg> = BTreeMap::new();
    for (i, spec) in specs.iter().enumerate() {
        let a = spec.build();
        let s = RowStats::of(&a);
        csv.row(&format!(
            "{},{:?},{},{},{},{:.2},{:.3},{:.3},{:.1},{:.3}",
            spec.name,
            spec.family,
            a.rows(),
            a.cols(),
            a.nnz(),
            s.mean,
            s.cv,
            s.gini,
            s.max_over_mean,
            s.empty_frac
        ))
        .unwrap();
        let e = families.entry(format!("{:?}", spec.family)).or_insert(Agg {
            count: 0,
            nnz_min: usize::MAX,
            nnz_max: 0,
            cv_min: f64::INFINITY,
            cv_max: 0.0,
        });
        e.count += 1;
        e.nnz_min = e.nnz_min.min(a.nnz());
        e.nnz_max = e.nnz_max.max(a.nnz());
        e.cv_min = e.cv_min.min(s.cv);
        e.cv_max = e.cv_max.max(s.cv);
        if (i + 1) % 40 == 0 {
            eprintln!("  [{}/{}]", i + 1, specs.len());
        }
    }
    let path = csv.finish().unwrap();

    println!("== SuiteSparse surrogate corpus: {} matrices ==", specs.len());
    println!(
        "{:<14} {:>6} {:>12} {:>12} {:>8} {:>8}",
        "family", "count", "min nnz", "max nnz", "min CV", "max CV"
    );
    for (f, a) in &families {
        println!(
            "{:<14} {:>6} {:>12} {:>12} {:>8.2} {:>8.2}",
            f, a.count, a.nnz_min, a.nnz_max, a.cv_min, a.cv_max
        );
    }
    println!("csv: {}", path.display());
}
