//! Ablation A (§5.2.3): sweep the group-mapped schedule's group size.
//!
//! Warp-mapped (32) and block-mapped (256) are single points of this
//! sweep; the paper's portability claim is that the sweet spot can follow
//! the problem's shape rather than the hardware's warp width.

use bench::{summary, Cli, CsvWriter};
use loops::schedule::ScheduleKind;
use simt::GpuSpec;
use std::collections::BTreeMap;

const GROUP_SIZES: [u32; 7] = [8, 16, 32, 64, 128, 256, 512];

fn main() {
    let mut cli = Cli::parse();
    // The sweep multiplies work by |GROUP_SIZES|; default to a subset.
    if cli.limit.is_none() {
        cli.limit = Some(60);
    }
    let spec = GpuSpec::v100();
    let mut csv = CsvWriter::create(
        &cli.out_dir,
        "ablation_group_size.csv",
        "kernel,dataset,rows,cols,nnzs,elapsed",
    )
    .expect("create csv");
    let mut per_size: BTreeMap<u32, Vec<f64>> = BTreeMap::new();
    let mut best_counts: BTreeMap<u32, usize> = BTreeMap::new();
    eprintln!("ablation A: group-size sweep ({} sizes)", GROUP_SIZES.len());
    bench::for_each_corpus_matrix(&cli, |ds, a, x| {
        // Normalize against merge-path on the same dataset.
        let mp = kernels::spmv(&spec, a, x, ScheduleKind::MergePath).expect("merge-path");
        let t_mp = mp.report.elapsed_ms();
        let mut best = (f64::INFINITY, 0u32);
        for &gs in &GROUP_SIZES {
            let run = kernels::spmv(&spec, a, x, ScheduleKind::GroupMapped(gs)).expect("group");
            if cli.validate {
                bench::validate_against_reference(&ds.name, a, x, &run.y);
            }
            let t = run.report.elapsed_ms();
            csv.spmv_row(
                &format!("group-{gs}"),
                &ds.name,
                a.rows(),
                a.cols(),
                a.nnz(),
                t,
            )
            .unwrap();
            per_size.entry(gs).or_default().push(t_mp / t);
            if t < best.0 {
                best = (t, gs);
            }
        }
        *best_counts.entry(best.1).or_default() += 1;
    });
    let path = csv.finish().unwrap();

    println!("== Ablation A: group-mapped group-size sweep ==");
    println!("{:<12} {:>26} {:>12}", "group size", "geomean vs merge-path", "best-on");
    for (gs, s) in &per_size {
        let label = match gs {
            32 => " (= warp-mapped)",
            256 => " (= block-mapped)",
            _ => "",
        };
        println!(
            "{:<12} {:>25.2}x {:>12}{label}",
            gs,
            summary::geomean(s),
            best_counts.get(gs).copied().unwrap_or(0)
        );
    }
    println!("csv: {}", path.display());
}
