//! Ablation F: static vs dynamic scheduling.
//!
//! The paper's abstraction covers both static schedules and the dynamic,
//! queue-based family its related work (§7: Tzeng, CUIRRE, Atos) builds
//! on. This harness pits the persistent work-queue schedule (at several
//! chunk sizes) against merge-path across the corpus: the dynamic
//! schedule needs zero setup and no knowledge of the distribution, but
//! pays one global atomic per chunk and loses merge-path's *intra-tile*
//! splitting (a monster row still lands on one thread).

use bench::{summary, Cli, CsvWriter};
use loops::schedule::ScheduleKind;
use simt::GpuSpec;

const CHUNKS: [u32; 4] = [1, 4, 16, 64];

fn main() {
    let mut cli = Cli::parse();
    if cli.limit.is_none() {
        cli.limit = Some(80);
    }
    let spec = GpuSpec::v100();
    let mut csv = CsvWriter::create(
        &cli.out_dir,
        "ablation_dynamic.csv",
        "kernel,dataset,rows,cols,nnzs,elapsed",
    )
    .expect("create csv");
    let mut per_chunk: std::collections::BTreeMap<u32, Vec<f64>> = Default::default();
    let mut tm_ratio = Vec::new();
    let mut lrb_ratio = Vec::new();
    eprintln!("ablation F: dynamic work-queue vs static schedules");
    bench::for_each_corpus_matrix(&cli, |ds, a, x| {
        let mp = kernels::spmv(&spec, a, x, ScheduleKind::MergePath).expect("merge-path");
        let tm = kernels::spmv(&spec, a, x, ScheduleKind::ThreadMapped).expect("thread-mapped");
        let t_mp = mp.report.elapsed_ms();
        csv.spmv_row("merge-path", &ds.name, a.rows(), a.cols(), a.nnz(), t_mp)
            .unwrap();
        tm_ratio.push(t_mp / tm.report.elapsed_ms());
        let lrb = kernels::spmv(&spec, a, x, ScheduleKind::Lrb).expect("lrb");
        csv.spmv_row("lrb", &ds.name, a.rows(), a.cols(), a.nnz(), lrb.report.elapsed_ms())
            .unwrap();
        lrb_ratio.push(t_mp / lrb.report.elapsed_ms());
        for &chunk in &CHUNKS {
            let run = kernels::spmv(&spec, a, x, ScheduleKind::WorkQueue(chunk)).expect("queue");
            if cli.validate {
                bench::validate_against_reference(&ds.name, a, x, &run.y);
            }
            let t = run.report.elapsed_ms();
            csv.spmv_row(
                &format!("work-queue-{chunk}"),
                &ds.name,
                a.rows(),
                a.cols(),
                a.nnz(),
                t,
            )
            .unwrap();
            per_chunk.entry(chunk).or_default().push(t_mp / t);
        }
    });
    let path = csv.finish().unwrap();

    println!("== Ablation F: dynamic work-queue vs merge-path (geomean of merge-path/queue) ==");
    println!("{:<12} {:>24} {:>10} {:>10}", "chunk", "geomean vs merge-path", "p10", "p90");
    for (chunk, s) in &per_chunk {
        println!(
            "{:<12} {:>23.2}x {:>9.2}x {:>9.2}x",
            chunk,
            summary::geomean(s),
            summary::quantile(s, 0.1),
            summary::quantile(s, 0.9)
        );
    }
    println!(
        "for context: vs merge-path, thread-mapped scores {:.2}x and LRB {:.2}x on this slice",
        summary::geomean(&tm_ratio),
        summary::geomean(&lrb_ratio)
    );
    println!("csv: {}", path.display());
}
