//! The artifact's `run.sh`, as a binary: executes every experiment in
//! sequence (figures, table, ablations) with shared flags, leaving all
//! CSVs under `results/`. `--limit N` subsets every corpus-driven
//! experiment for a quick pass.

use std::process::Command;

const BINS: [&str; 17] = [
    "fig2",
    "fig3",
    "fig4",
    "table1",
    "ablation_group_size",
    "ablation_heuristic",
    "ablation_overhead",
    "ablation_devices",
    "ablation_dynamic",
    "ablation_multi_gpu",
    "locality_report",
    "timeline",
    "corpus_stats",
    "serve_bench",
    "autotune_bench",
    "format_ablation",
    "shard_bench",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let exe_dir = std::env::current_exe()
        .expect("own path")
        .parent()
        .expect("bin dir")
        .to_path_buf();
    let mut failed = Vec::new();
    for bin in BINS {
        println!("\n================ {bin} ================");
        let path = exe_dir.join(bin);
        let status = Command::new(&path)
            .args(&args)
            .status()
            .unwrap_or_else(|e| panic!("failed to spawn {}: {e}", path.display()));
        if !status.success() {
            eprintln!("!! {bin} exited with {status}");
            failed.push(bin);
        }
    }
    println!("\n================ summary ================");
    if failed.is_empty() {
        println!("all {} experiments completed; CSVs in results/", BINS.len());
    } else {
        println!("FAILED: {failed:?}");
        std::process::exit(1);
    }
}
