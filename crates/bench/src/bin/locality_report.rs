//! Locality analysis (paper §8's second future-work item): how does the
//! *schedule* change the cache behaviour of SpMV's `x`-gathers?
//!
//! For each matrix we reconstruct the order in which each schedule's
//! processors touch the atoms, interleave the per-processor streams
//! round-robin (an idealized concurrent execution), and replay the
//! resulting `x`-address stream through a simulated V100 L2
//! ([`simt::CacheSim`]). The schedules differ *only* in visitation order —
//! same addresses, same totals — so the hit-rate spread is pure locality.
//!
//! This is analysis, not timing: the cost model prices bandwidth, not
//! hits. The report quantifies how much headroom a locality-aware model
//! (the paper's proposed orthogonal abstraction) would have to work with.

use bench::{Cli, CsvWriter};
use loops::work::TileSet;
use loops::CsrTiles;
use simt::{CacheConfig, CacheSim};
use sparse::Csr;

/// Per-processor atom streams for each schedule shape.
fn streams_thread_mapped(a: &Csr<f32>, threads: usize) -> Vec<Vec<usize>> {
    // Thread t owns rows t, t+threads, …; visits their atoms in order.
    let mut out = vec![Vec::new(); threads];
    for (t, stream) in out.iter_mut().enumerate() {
        let mut row = t;
        while row < a.rows() {
            stream.extend(a.row_range(row));
            row += threads;
        }
    }
    out
}

fn streams_merge_path(a: &Csr<f32>, items_per_thread: usize) -> Vec<Vec<usize>> {
    // Thread t owns a contiguous merge chunk; its atoms are contiguous.
    let work = CsrTiles::new(a);
    let total = work.num_tiles() + work.num_atoms();
    let threads = total.div_ceil(items_per_thread);
    // Approximate the atom share: contiguous slices of the atom space.
    let mut out = Vec::with_capacity(threads);
    let per = a.nnz().div_ceil(threads.max(1)).max(1);
    let mut begin = 0usize;
    for _ in 0..threads {
        let end = (begin + per).min(a.nnz());
        out.push((begin..end).collect());
        begin = end;
        if begin >= a.nnz() {
            break;
        }
    }
    out
}

fn streams_warp_per_row(a: &Csr<f32>, warps: usize) -> Vec<Vec<usize>> {
    // Warp w owns rows w, w+warps, …; lanes stride the row (visitation
    // order within the row is still ascending).
    let mut out = vec![Vec::new(); warps];
    for (w, stream) in out.iter_mut().enumerate() {
        let mut row = w;
        while row < a.rows() {
            stream.extend(a.row_range(row));
            row += warps;
        }
    }
    out
}

/// Round-robin interleave per-processor streams and replay x-gathers.
fn replay(a: &Csr<f32>, streams: &[Vec<usize>]) -> f64 {
    let mut cache = CacheSim::new(CacheConfig::v100_l2());
    let mut cursors = vec![0usize; streams.len()];
    let mut remaining: usize = streams.iter().map(Vec::len).sum();
    while remaining > 0 {
        for (s, cur) in streams.iter().zip(cursors.iter_mut()) {
            if *cur < s.len() {
                let atom = s[*cur];
                *cur += 1;
                remaining -= 1;
                let col = a.col_indices()[atom] as u64;
                cache.access(col * 4); // x[col], 4-byte floats
            }
        }
    }
    cache.stats().hit_rate()
}

fn main() {
    let cli = Cli::parse();
    // x must exceed the 6 MiB L2 (≥ ~1.5 M columns) for order to matter.
    let cases: Vec<(&str, Csr<f32>)> = vec![
        ("banded_3M", sparse::gen::banded(3_000_000, 4, 1)),
        ("stencil5_1730", sparse::gen::stencil5(1_730, 1_730, 2)),
        ("uniform_3M", sparse::gen::uniform(3_000_000, 3_000_000, 12_000_000, 3)),
        ("powerlaw_3M", sparse::gen::powerlaw(3_000_000, 3_000_000, 12_000_000, 1.8, 4)),
        ("rmat_s21", sparse::gen::rmat(21, 6, (0.57, 0.19, 0.19), 5)),
    ];
    let mut csv = CsvWriter::create(
        &cli.out_dir,
        "locality_report.csv",
        "dataset,rows,nnz,hit_thread_mapped,hit_merge_path,hit_warp_per_row",
    )
    .expect("create csv");
    println!("== Locality report: simulated V100 L2 hit rate of SpMV x-gathers ==");
    println!(
        "{:<16} {:>10} {:>15} {:>12} {:>14}",
        "dataset", "nnz", "thread-mapped", "merge-path", "warp-per-row"
    );
    for (name, a) in &cases {
        let tm = replay(a, &streams_thread_mapped(a, 2560));
        let mp = replay(a, &streams_merge_path(a, 7));
        let wr = replay(a, &streams_warp_per_row(a, 2560));
        println!(
            "{:<16} {:>10} {:>14.1}% {:>11.1}% {:>13.1}%",
            name,
            a.nnz(),
            tm * 100.0,
            mp * 100.0,
            wr * 100.0
        );
        csv.row(&format!(
            "{name},{},{},{tm:.4},{mp:.4},{wr:.4}",
            a.rows(),
            a.nnz()
        ))
        .unwrap();
    }
    let path = csv.finish().unwrap();
    println!("\n(same addresses, different visitation order: the spread is the headroom a");
    println!(" locality-aware scheduling model — the paper's §8 follow-up — could exploit)");

    // The data-side lever: RCM reordering packs column accesses together.
    println!("\nRCM reordering (merge-path order, uniform_3M):");
    let a = &cases[2].1;
    let before = replay(a, &streams_merge_path(a, 7));
    let p = sparse::reorder::rcm(a);
    let b = sparse::reorder::permute_symmetric(a, &p);
    let after = replay(&b, &streams_merge_path(&b, 7));
    println!(
        "  L2 hit rate {:.1}% -> {:.1}%   (bandwidth {} -> {})",
        before * 100.0,
        after * 100.0,
        sparse::reorder::bandwidth(a),
        sparse::reorder::bandwidth(&b)
    );
    println!("csv: {}", path.display());
}
