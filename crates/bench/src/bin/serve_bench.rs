//! Serving benchmark: an open-loop Zipf workload over the corpus, driven
//! through the `runtime` crate's device pool, plan cache, and batcher.
//!
//! Sweeps pool size × backpressure policy on one fixed request stream and
//! reports throughput scaling, plan-cache hit rate, and tail latency.
//! Emits `results/serve_bench.csv`.

use std::sync::Arc;

use bench::{Cli, CsvWriter};
use runtime::{zipf_workload, QueuePolicy, Runtime, RuntimeConfig, WorkloadSpec};
use simt::GpuSpec;
use sparse::Csr;

const REQUESTS: usize = 800;
const MAX_NNZ: usize = 250_000;

fn main() {
    let cli = Cli::parse();
    let take = cli.limit.unwrap_or(10);
    // Serving mix: a deterministic corpus slice, capped in size so the
    // functional execution of hundreds of requests stays fast.
    let matrices: Vec<Arc<Csr<f32>>> = sparse::corpus::corpus_subset(take * 2)
        .iter()
        .filter(|s| s.approx_nnz() <= MAX_NNZ)
        .take(take)
        .map(|s| Arc::new(s.build()))
        .collect();
    assert!(!matrices.is_empty(), "corpus filter left no matrices");
    let workload = WorkloadSpec {
        requests: REQUESTS,
        zipf_s: 1.1,
        mean_interarrival_ms: 0.001,
        seed: 42,
    };
    let requests = zipf_workload(&matrices, &workload);
    eprintln!(
        "serve_bench: {} requests over {} matrices (zipf s={}, mean gap {} ms)",
        requests.len(),
        matrices.len(),
        workload.zipf_s,
        workload.mean_interarrival_ms
    );

    let mut csv = CsvWriter::create(
        &cli.out_dir,
        "serve_bench.csv",
        "devices,policy,served,rejected,batches,hit_rate,p50_ms,p99_ms,mean_ms,makespan_ms,throughput_rps,mean_occupancy",
    )
    .expect("create csv");

    println!("== serve_bench: pool scaling on a fixed Zipf stream ==");
    println!(
        "{:<8} {:<7} {:>6} {:>8} {:>9} {:>9} {:>10} {:>12} {:>9}",
        "devices", "policy", "served", "rej", "hit_rate", "p50 ms", "p99 ms", "req/s", "occup"
    );
    let mut base_throughput = None;
    for &devices in &[1usize, 2, 4] {
        for (policy, pname) in [(QueuePolicy::Block, "block"), (QueuePolicy::Reject, "reject")] {
            let mut rt = Runtime::new(
                GpuSpec::v100(),
                RuntimeConfig {
                    devices,
                    policy,
                    ..RuntimeConfig::default()
                },
            );
            let out = rt.serve(&requests).expect("serve");
            let r = &out.report;
            let occ = r.devices.iter().map(|d| d.sm_occupancy).sum::<f64>()
                / r.devices.len() as f64;
            csv.row(&format!(
                "{},{},{},{},{},{:.4},{:.5},{:.5},{:.5},{:.4},{:.1},{:.4}",
                devices,
                pname,
                r.served,
                r.rejected,
                r.batches,
                r.cache.hit_rate(),
                r.latency_p50_ms,
                r.latency_p99_ms,
                r.latency_mean_ms,
                r.makespan_ms,
                r.throughput_rps(),
                occ
            ))
            .unwrap();
            println!(
                "{:<8} {:<7} {:>6} {:>8} {:>8.1}% {:>9.4} {:>10.4} {:>12.0} {:>8.1}%",
                devices,
                pname,
                r.served,
                r.rejected,
                r.cache.hit_rate() * 100.0,
                r.latency_p50_ms,
                r.latency_p99_ms,
                r.throughput_rps(),
                occ * 100.0
            );
            if policy == QueuePolicy::Block {
                match base_throughput {
                    None => base_throughput = Some(r.throughput_rps()),
                    Some(base) => println!(
                        "         → {devices}-device throughput scaling vs 1 device: {:.2}x",
                        r.throughput_rps() / base
                    ),
                }
            }
        }
    }
    let path = csv.finish().unwrap();
    eprintln!("wrote {}", path.display());
    host_backend_wall_clock();
}

/// Host-backend wall-clock comparison on a large power-law workload.
///
/// Simulated time is pinned bitwise across backends (the
/// `tests/host_parallel.rs` oracle), so the only number allowed to move
/// is how long the *host* takes to compute it — which is exactly what
/// this table measures, and why it goes to stdout only: the CSV above
/// is already finished and stays byte-identical under any backend.
/// Speedup is bounded by this machine's core count; on a single-core
/// runner the parallel rows only pay thread overhead.
fn host_backend_wall_clock() {
    use simt::HostBackend;

    let hub = Arc::new(sparse::gen::powerlaw(30_000, 30_000, 600_000, 1.8, 77));
    let requests = zipf_workload(
        &[hub],
        &WorkloadSpec {
            requests: 64,
            zipf_s: 1.1,
            mean_interarrival_ms: 0.001,
            seed: 7,
        },
    );
    println!("\n== host backend wall clock: powerlaw 30k x 30k, 64 requests, devices=4 ==");
    println!("{:<13} {:>10} {:>9}", "backend", "wall ms", "speedup");

    let serve = |backend: Option<HostBackend>| {
        let mut rt = Runtime::new(
            GpuSpec::v100(),
            RuntimeConfig {
                devices: 4,
                host_backend: backend,
                ..RuntimeConfig::default()
            },
        );
        let t0 = std::time::Instant::now();
        let out = rt.serve(&requests).expect("serve");
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        (wall_ms, out.report.makespan_ms.to_bits(), out.report.served)
    };

    let (seq_ms, seq_makespan, seq_served) = serve(None);
    println!("{:<13} {:>10.1} {:>8.2}x", "sequential", seq_ms, 1.0);
    for threads in [2usize, 4, 8] {
        let (ms, makespan, served) = serve(Some(HostBackend::Parallel { threads }));
        assert_eq!(
            (makespan, served),
            (seq_makespan, seq_served),
            "parallel({threads}) diverged from the sequential backend"
        );
        println!(
            "{:<13} {:>10.1} {:>8.2}x",
            format!("parallel({threads})"),
            ms,
            seq_ms / ms
        );
    }
}
