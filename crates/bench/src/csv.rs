//! CSV emission in the artifact's format.
//!
//! The paper's `run.sh` produces files whose rows look like
//! `merge-path,1138_bus,1138,1138,4054,0.0200195`; the harness reproduces
//! that layout so the artifact's plotting notebook could consume our
//! output unchanged.

use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

/// A buffered CSV file writer.
#[derive(Debug)]
pub struct CsvWriter {
    path: PathBuf,
    out: BufWriter<std::fs::File>,
    rows: usize,
}

impl CsvWriter {
    /// Create `dir/name` (creating `dir` as needed) and write `header`.
    pub fn create(dir: &str, name: &str, header: &str) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let path = Path::new(dir).join(name);
        let mut out = BufWriter::new(std::fs::File::create(&path)?);
        writeln!(out, "{header}")?;
        Ok(Self {
            path,
            out,
            rows: 0,
        })
    }

    /// Write one raw row (caller formats the fields).
    pub fn row(&mut self, line: &str) -> std::io::Result<()> {
        writeln!(self.out, "{line}")?;
        self.rows += 1;
        Ok(())
    }

    /// The artifact's standard row: kernel, dataset, shape, elapsed (ms).
    pub fn spmv_row(
        &mut self,
        kernel: &str,
        dataset: &str,
        rows: usize,
        cols: usize,
        nnzs: usize,
        elapsed_ms: f64,
    ) -> std::io::Result<()> {
        self.row(&format!("{kernel},{dataset},{rows},{cols},{nnzs},{elapsed_ms}"))
    }

    /// Rows written so far (excluding the header).
    pub fn rows_written(&self) -> usize {
        self.rows
    }

    /// Flush and report the file path.
    pub fn finish(mut self) -> std::io::Result<PathBuf> {
        self.out.flush()?;
        Ok(self.path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_header_rows_and_reports_path() {
        let dir = std::env::temp_dir().join("bench_csv_test");
        let dir = dir.to_str().unwrap();
        let mut w = CsvWriter::create(dir, "t.csv", "kernel,dataset,rows,cols,nnzs,elapsed")
            .unwrap();
        w.spmv_row("merge-path", "1138_bus", 1138, 1138, 4054, 0.02).unwrap();
        assert_eq!(w.rows_written(), 1);
        let path = w.finish().unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        let mut lines = text.lines();
        assert_eq!(lines.next().unwrap(), "kernel,dataset,rows,cols,nnzs,elapsed");
        assert_eq!(lines.next().unwrap(), "merge-path,1138_bus,1138,1138,4054,0.02");
    }
}
