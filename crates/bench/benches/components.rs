//! Micro-benchmarks of the framework's host-side components: merge-path
//! diagonal partitioning, group prefix-sum/get_tile machinery, generators,
//! and format conversion. These measure *host simulation* performance
//! (useful for keeping the harness fast), not simulated GPU time — that is
//! what the fig*/ablation_* binaries report.

use bench::microbench::bench;
use loops::work::{CountedTiles, TileSet};
use std::hint::black_box;

fn bench_counted_tiles_build() {
    for rows in [10_000usize, 300_000] {
        bench(&format!("counted_tiles_prefix_sum/{rows}"), 10, || {
            let t = CountedTiles::from_counts((0..rows).map(|i| i % 9));
            black_box(t.num_atoms())
        });
    }
}

fn bench_tile_offset_lookups() {
    let w = CountedTiles::from_counts((0..100_000usize).map(|i| i % 17));
    bench("tile_offset_lookup_x1024", 50, || {
        let mut acc = 0usize;
        for i in 0..1024usize {
            acc = acc.wrapping_add(w.tile_offset((i * 97) % (w.num_tiles() + 1)));
        }
        black_box(acc)
    });
}

fn bench_generators() {
    bench("generators/uniform_16k_x16", 10, || {
        black_box(sparse::gen::uniform(16_000, 16_000, 16_000 * 16, 1))
    });
    bench("generators/powerlaw_16k_x16", 10, || {
        black_box(sparse::gen::powerlaw(16_000, 16_000, 16_000 * 16, 1.8, 1))
    });
    bench("generators/rmat_s12_e8", 10, || {
        black_box(sparse::gen::rmat(12, 8, (0.57, 0.19, 0.19), 1))
    });
}

fn bench_conversion() {
    let a = sparse::gen::uniform(50_000, 50_000, 800_000, 2);
    let coo = sparse::convert::csr_to_coo(&a);
    bench("conversion/coo_to_csr_800k", 10, || {
        black_box(sparse::convert::coo_to_csr(&coo))
    });
    bench("conversion/csr_to_csc_800k", 10, || {
        black_box(sparse::convert::csr_to_csc(&a))
    });
}

fn bench_stats() {
    let a = sparse::gen::powerlaw(100_000, 100_000, 1_600_000, 1.8, 3);
    bench("stats/row_stats_100k_rows", 10, || {
        black_box(sparse::RowStats::of(&a))
    });
}

fn main() {
    bench_counted_tiles_build();
    bench_tile_offset_lookups();
    bench_generators();
    bench_conversion();
    bench_stats();
}
