//! Criterion micro-benchmarks of the framework's host-side components:
//! merge-path diagonal partitioning, group prefix-sum/get_tile machinery,
//! generators, and format conversion. These measure *host simulation*
//! performance (useful for keeping the harness fast), not simulated GPU
//! time — that is what the fig*/ablation_* binaries report.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use loops::work::{CountedTiles, TileSet};
use std::hint::black_box;

fn bench_counted_tiles_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("counted_tiles_prefix_sum");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(2));
    for &rows in &[10_000usize, 300_000] {
        g.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, &rows| {
            b.iter(|| {
                let t = CountedTiles::from_counts((0..rows).map(|i| i % 9));
                black_box(t.num_atoms())
            })
        });
    }
    g.finish();
}

fn bench_tile_offset_lookups(c: &mut Criterion) {
    let w = CountedTiles::from_counts((0..100_000usize).map(|i| i % 17));
    c.bench_function("tile_offset_lookup_x1024", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for i in 0..1024usize {
                acc = acc.wrapping_add(w.tile_offset((i * 97) % (w.num_tiles() + 1)));
            }
            black_box(acc)
        })
    });
}

fn bench_generators(c: &mut Criterion) {
    let mut g = c.benchmark_group("generators");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.bench_function("uniform_16k_x16", |b| {
        b.iter(|| black_box(sparse::gen::uniform(16_000, 16_000, 16_000 * 16, 1)))
    });
    g.bench_function("powerlaw_16k_x16", |b| {
        b.iter(|| black_box(sparse::gen::powerlaw(16_000, 16_000, 16_000 * 16, 1.8, 1)))
    });
    g.bench_function("rmat_s12_e8", |b| {
        b.iter(|| black_box(sparse::gen::rmat(12, 8, (0.57, 0.19, 0.19), 1)))
    });
    g.finish();
}

fn bench_conversion(c: &mut Criterion) {
    let a = sparse::gen::uniform(50_000, 50_000, 800_000, 2);
    let coo = sparse::convert::csr_to_coo(&a);
    let mut g = c.benchmark_group("conversion");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.bench_function("coo_to_csr_800k", |b| {
        b.iter(|| black_box(sparse::convert::coo_to_csr(&coo)))
    });
    g.bench_function("csr_to_csc_800k", |b| {
        b.iter(|| black_box(sparse::convert::csr_to_csc(&a)))
    });
    g.finish();
}

fn bench_stats(c: &mut Criterion) {
    let a = sparse::gen::powerlaw(100_000, 100_000, 1_600_000, 1.8, 3);
    let mut g = c.benchmark_group("stats");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.bench_function("row_stats_100k_rows", |b| {
        b.iter(|| black_box(sparse::RowStats::of(&a)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_counted_tiles_build,
    bench_tile_offset_lookups,
    bench_generators,
    bench_conversion,
    bench_stats
);
criterion_main!(benches);
