//! End-to-end benchmarks: host wall time of fully simulated SpMV launches
//! per schedule, on representative corpus shapes. Keeps the simulator fast
//! enough that the full-corpus experiment binaries stay in the minutes
//! range.

use bench::microbench::bench;
use loops::schedule::ScheduleKind;
use simt::GpuSpec;
use std::hint::black_box;

fn bench_spmv_schedules() {
    let spec = GpuSpec::v100();
    let cases = [
        ("uniform_30k", sparse::gen::uniform(30_000, 30_000, 500_000, 1)),
        ("powerlaw_30k", sparse::gen::powerlaw(30_000, 30_000, 500_000, 1.8, 2)),
        ("banded_30k", sparse::gen::banded(30_000, 4, 3)),
    ];
    let schedules = [
        ("thread", ScheduleKind::ThreadMapped),
        ("merge", ScheduleKind::MergePath),
        ("warp", ScheduleKind::WarpMapped),
        ("group64", ScheduleKind::GroupMapped(64)),
    ];
    for (mat_name, a) in &cases {
        let x = sparse::dense::test_vector(a.cols());
        for (s_name, kind) in schedules {
            bench(&format!("simulated_spmv/{mat_name}/{s_name}"), 10, || {
                black_box(kernels::spmv(&spec, a, &x, kind).unwrap().report)
            });
        }
    }
}

fn bench_baselines() {
    let spec = GpuSpec::v100();
    let a = sparse::gen::uniform(30_000, 30_000, 500_000, 4);
    let x = sparse::dense::test_vector(a.cols());
    bench("simulated_baselines/cub_merge_path", 10, || {
        black_box(baselines::cub_spmv(&spec, &a, &x).unwrap().report)
    });
    bench("simulated_baselines/cusparse", 10, || {
        black_box(baselines::cusparse_spmv(&spec, &a, &x).unwrap().report)
    });
}

fn main() {
    bench_spmv_schedules();
    bench_baselines();
}
