//! Criterion end-to-end benchmarks: host wall time of fully simulated
//! SpMV launches per schedule, on representative corpus shapes. Keeps the
//! simulator fast enough that the full-corpus experiment binaries stay in
//! the minutes range.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use loops::schedule::ScheduleKind;
use simt::GpuSpec;
use std::hint::black_box;

fn bench_spmv_schedules(c: &mut Criterion) {
    let spec = GpuSpec::v100();
    let cases = [
        ("uniform_30k", sparse::gen::uniform(30_000, 30_000, 500_000, 1)),
        ("powerlaw_30k", sparse::gen::powerlaw(30_000, 30_000, 500_000, 1.8, 2)),
        ("banded_30k", sparse::gen::banded(30_000, 4, 3)),
    ];
    let schedules = [
        ("thread", ScheduleKind::ThreadMapped),
        ("merge", ScheduleKind::MergePath),
        ("warp", ScheduleKind::WarpMapped),
        ("group64", ScheduleKind::GroupMapped(64)),
    ];
    let mut g = c.benchmark_group("simulated_spmv");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(2));
    for (mat_name, a) in &cases {
        let x = sparse::dense::test_vector(a.cols());
        for (s_name, kind) in schedules {
            g.bench_with_input(BenchmarkId::new(*mat_name, s_name), &kind, |b, &kind| {
                b.iter(|| black_box(kernels::spmv(&spec, a, &x, kind).unwrap().report))
            });
        }
    }
    g.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let spec = GpuSpec::v100();
    let a = sparse::gen::uniform(30_000, 30_000, 500_000, 4);
    let x = sparse::dense::test_vector(a.cols());
    let mut g = c.benchmark_group("simulated_baselines");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.bench_function("cub_merge_path", |b| {
        b.iter(|| black_box(baselines::cub_spmv(&spec, &a, &x).unwrap().report))
    });
    g.bench_function("cusparse", |b| {
        b.iter(|| black_box(baselines::cusparse_spmv(&spec, &a, &x).unwrap().report))
    });
    g.finish();
}

criterion_group!(benches, bench_spmv_schedules, bench_baselines);
criterion_main!(benches);
