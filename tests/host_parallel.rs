//! The cross-thread-count bitwise-equivalence harness for the parallel
//! host backend (`simt::host`).
//!
//! The contract under test: executing a launch's simulated blocks on N
//! worker threads is an implementation detail — results, every
//! [`simt::LaunchReport`] field except the `host_wall_ms` diagnostic,
//! and the simulated makespan must be **bitwise identical** to the
//! sequential backend at every thread count. The harness drives the
//! full dispatch matrix (7 schedules × spmv/spmm/bfs/sssp/pagerank/
//! cg/triangle) under `Sequential` and under `Parallel {1, 2, 4, 8}`,
//! fingerprinting everything observable; it also runs each thread count
//! twice to pin run-to-run determinism (a scheduler-interleaving leak
//! would show up here even if it happened to match sequential once).
//!
//! Thread counts are honored literally — `Parallel { threads: 8 }`
//! spawns 8 workers regardless of the machine's core count — so the
//! matrix is meaningful on any host.

use kernels::graph::Graph;
use loops::schedule::ScheduleKind;
use simt::{GpuSpec, HostBackend, LaunchReport};
use sparse::{Csr, DenseMatrix};

const ALL_KINDS: [ScheduleKind; 7] = [
    ScheduleKind::ThreadMapped,
    ScheduleKind::WarpMapped,
    ScheduleKind::BlockMapped,
    ScheduleKind::GroupMapped(16),
    ScheduleKind::MergePath,
    ScheduleKind::WorkQueue(8),
    ScheduleKind::Lrb,
];

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn bits(y: &[f32]) -> Vec<u32> {
    y.iter().map(|v| v.to_bits()).collect()
}

/// A launch report rendered bit-faithfully (f64 `Debug` is
/// shortest-roundtrip), with the host wall-clock diagnostic — the one
/// field the backend is *allowed* to change — zeroed out.
fn report_fp(r: &LaunchReport) -> String {
    let mut r = r.clone();
    r.host_wall_ms = 0.0;
    format!("{r:?}")
}

/// Run the full kernel × schedule matrix and fingerprint every
/// observable output. Labels keep assertion failures pointed at the
/// exact (kernel, schedule) cell that diverged.
fn dispatch_matrix_fingerprints() -> Vec<(String, String)> {
    let spec = GpuSpec::v100();
    let a = sparse::gen::powerlaw(200, 200, 3_000, 1.8, 12);
    let small = sparse::gen::uniform(60, 50, 400, 11);
    let x = sparse::dense::test_vector(a.cols());
    let xs = sparse::dense::test_vector(small.cols());
    let b = DenseMatrix::from_fn(a.cols(), 3, |r, c| ((r + 2 * c) as f32).sin());
    let g = Graph::from_generator(sparse::gen::powerlaw(150, 150, 2_000, 1.8, 14));
    let gb = Graph::from_generator(sparse::gen::banded(40, 3, 16));
    let spd = {
        // Small SPD system for CG: banded matrices are symmetric here,
        // and a diagonal shift makes them positive definite.
        let base: Csr<f32> = sparse::gen::banded(50, 2, 18);
        let mut triplets = Vec::new();
        for r in 0..base.rows() {
            let (cols, vals) = base.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                triplets.push((r as u32, c, v.abs()));
            }
            triplets.push((r as u32, r as u32, 10.0));
        }
        Csr::from_triplets(base.rows(), base.cols(), triplets).unwrap()
    };
    let rhs: Vec<f32> = (0..spd.rows()).map(|i| ((i % 7) as f32) - 3.0).collect();

    let mut out = Vec::new();
    for kind in ALL_KINDS {
        let run = kernels::spmv(&spec, &a, &x, kind).unwrap();
        out.push((
            format!("spmv/{kind}"),
            format!("{:?} {} {}", bits(&run.y), run.schedule, report_fp(&run.report)),
        ));
        let run = kernels::spmv(&spec, &small, &xs, kind).unwrap();
        out.push((
            format!("spmv-small/{kind}"),
            format!("{:?} {} {}", bits(&run.y), run.schedule, report_fp(&run.report)),
        ));
        let run = kernels::spmm::spmm(&spec, &a, &b, kind).unwrap();
        out.push((
            format!("spmm/{kind}"),
            format!(
                "{:?} {} {}",
                bits(run.c.as_slice()),
                run.schedule,
                report_fp(&run.report)
            ),
        ));
        let run = kernels::bfs::bfs(&spec, &g, 0, kind).unwrap();
        out.push((
            format!("bfs/{kind}"),
            format!("{:?} {} {}", run.depth, run.iterations, report_fp(&run.report)),
        ));
        let run = kernels::sssp::sssp(&spec, &g, 0, kind).unwrap();
        out.push((
            format!("sssp/{kind}"),
            format!(
                "{:?} {} {}",
                bits(&run.dist),
                run.iterations,
                report_fp(&run.report)
            ),
        ));
        let run = kernels::pagerank::pagerank(&spec, &g, kind, 1e-6, 100).unwrap();
        out.push((
            format!("pagerank/{kind}"),
            format!(
                "{:?} {} {}",
                bits(&run.rank),
                run.iterations,
                report_fp(&run.report)
            ),
        ));
        let run = kernels::cg::cg(&spec, &spd, &rhs, kind, 1e-7, 500).unwrap();
        out.push((
            format!("cg/{kind}"),
            format!(
                "{:?} {} {} {}",
                bits(&run.x),
                run.iterations,
                run.residual.to_bits(),
                report_fp(&run.report)
            ),
        ));
        let run = kernels::triangle::triangle_count(&spec, &gb, kind).unwrap();
        out.push((
            format!("triangle/{kind}"),
            format!("{} {}", run.triangles, report_fp(&run.report)),
        ));
    }
    out
}

fn assert_matrix_eq(want: &[(String, String)], got: &[(String, String)], what: &str) {
    assert_eq!(want.len(), got.len(), "{what}: matrix shape changed");
    for ((wl, wf), (gl, gf)) in want.iter().zip(got) {
        assert_eq!(wl, gl, "{what}: cell order changed");
        assert_eq!(wf, gf, "{what}: {wl} diverged from the sequential backend");
    }
}

#[test]
fn parallel_backend_is_bitwise_equal_to_sequential_across_thread_counts() {
    let seq = simt::host::scoped(HostBackend::Sequential, dispatch_matrix_fingerprints);
    for threads in THREAD_COUNTS {
        let backend = HostBackend::Parallel { threads };
        let run1 = simt::host::scoped(backend, dispatch_matrix_fingerprints);
        assert_matrix_eq(&seq, &run1, &format!("{threads} threads"));
        let run2 = simt::host::scoped(backend, dispatch_matrix_fingerprints);
        assert_matrix_eq(&run1, &run2, &format!("{threads} threads, second run"));
    }
}

#[test]
fn device_sim_pinned_backend_matches_scoped_and_sequential() {
    // The `DeviceSim::set_host_backend` route must agree with both the
    // thread-scoped route and the sequential default, shared-timeline
    // placement included.
    use simt::{DeviceSim, LaunchConfig};

    let run = |backend: Option<HostBackend>| {
        let mut dev = DeviceSim::new(GpuSpec::test_tiny());
        if let Some(b) = backend {
            dev.set_host_backend(b);
        }
        let s = dev.create_stream();
        let mut y = vec![0.0f32; 4_096];
        let mut jobs = Vec::new();
        {
            let gy = simt::GlobalMem::new(&mut y);
            for wave in 0..3u64 {
                let job = dev
                    .launch_at(s, LaunchConfig::new(64, 64), &move |b: &mut simt::BlockCtx<'_>| {
                        b.for_each_thread(|t| {
                            let gid = t.global_thread_id() as usize;
                            gy.fetch_add(gid, (wave + 1) as f32 * 0.25);
                            t.charge(10.0);
                        });
                    }, 0.0)
                    .unwrap();
                jobs.push((job.start_ms.to_bits(), job.end_ms.to_bits()));
            }
        }
        (bits(&y), jobs, dev.makespan_ms().to_bits())
    };

    let seq = run(None);
    for threads in THREAD_COUNTS {
        let pinned = run(Some(HostBackend::Parallel { threads }));
        assert_eq!(seq, pinned, "pinned backend at {threads} threads");
        let scoped = simt::host::scoped(HostBackend::Parallel { threads }, || run(None));
        assert_eq!(seq, scoped, "scoped backend at {threads} threads");
    }
}

#[test]
fn env_default_resolution_is_overridden_by_scopes() {
    // Whatever LOOPS_HOST_THREADS says, an explicit scope wins — and the
    // innermost scope wins over an outer one.
    let outer = HostBackend::Parallel { threads: 3 };
    simt::host::scoped(outer, || {
        assert_eq!(simt::host::current(), outer);
        simt::host::scoped(HostBackend::Sequential, || {
            assert_eq!(simt::host::current(), HostBackend::Sequential);
        });
        assert_eq!(simt::host::current(), outer);
    });
}
