//! The schedule oracle under fault injection: faults change *timing*,
//! never *results*.
//!
//! The simulator computes kernel results functionally and times them
//! analytically, so any non-fatal [`simt::FaultPlan`] — degraded SMs,
//! stall windows, transient launch failures — must leave every output
//! vector bitwise identical to the fault-free run, across all six
//! schedules and three kernels (SpMV, SpMM, BFS). These tests are the
//! witness: if a fault path ever leaks into the functional side, the
//! bitwise comparison here fails.
//!
//! Also here: failover integration (a device killed at a seeded tick
//! mid-workload loses zero requests) and the batcher's fault/deadline
//! edge cases.

use std::sync::Arc;

use kernels::{reference, Graph};
use loops::schedule::ScheduleKind;
use runtime::{DropReason, Request, Runtime, RuntimeConfig};
use simt::{fault, FaultPlan, GpuSpec};
use sparse::Csr;

const SCHEDULES: [ScheduleKind; 6] = [
    ScheduleKind::ThreadMapped,
    ScheduleKind::WarpMapped,
    ScheduleKind::BlockMapped,
    ScheduleKind::MergePath,
    ScheduleKind::WorkQueue(256),
    ScheduleKind::Lrb,
];

/// Every non-fatal fault shape the plan can express. Fatal plans
/// (device kills) are excluded by construction: they refuse work rather
/// than complete it, so "same results" is not a meaningful contract.
fn non_fatal_plans() -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("healthy", FaultPlan::healthy(1)),
        ("degraded", FaultPlan::healthy(2).with_degraded_sms(1.0, 0.3, 0.9)),
        ("flaky", FaultPlan::healthy(3).with_flaky_launches(0.5)),
        ("stalled", FaultPlan::healthy(4).with_stall(0.0, 10.0)),
        (
            "everything",
            FaultPlan::healthy(5)
                .with_degraded_sms(0.5, 0.2, 0.95)
                .with_flaky_launches(0.3)
                .with_stall(0.1, 5.0),
        ),
    ]
}

fn matrices() -> Vec<(&'static str, Csr<f32>)> {
    vec![
        ("powerlaw", sparse::gen::powerlaw(2_000, 2_000, 30_000, 1.8, 11)),
        ("uniform", sparse::gen::uniform(800, 900, 12_000, 12)),
        ("hub", sparse::gen::hub_rows(600, 600, 3, 400, 2, 13)),
        ("banded", sparse::gen::banded(500, 4, 14)),
    ]
}

fn bits(y: &[f32]) -> Vec<u32> {
    y.iter().map(|v| v.to_bits()).collect()
}

#[test]
fn spmv_results_are_bitwise_fault_invariant_across_all_schedules() {
    let spec = GpuSpec::v100();
    for (mname, a) in matrices() {
        let x = sparse::dense::test_vector(a.cols());
        let want = a.spmv_ref(&x);
        for kind in SCHEDULES {
            let clean = kernels::spmv(&spec, &a, &x, kind).expect("clean run");
            // Sanity: the clean run is actually correct, so bitwise
            // equality below is equality to a *right* answer.
            let err = kernels::spmv::max_rel_error(&clean.y, &want);
            assert!(err < 2e-3, "{mname} {kind}: clean err {err}");
            for (pname, plan) in non_fatal_plans() {
                let faulted =
                    fault::scoped(plan, || kernels::spmv(&spec, &a, &x, kind)).expect("faulted run");
                assert_eq!(
                    bits(&clean.y),
                    bits(&faulted.y),
                    "{mname} {kind} plan={pname}: faults must not change results"
                );
            }
        }
    }
}

#[test]
fn spmm_results_are_bitwise_fault_invariant() {
    let spec = GpuSpec::v100();
    let a = sparse::gen::powerlaw(600, 500, 9_000, 1.7, 21);
    let b = sparse::DenseMatrix::from_fn(500, 8, |r, c| ((r * 7 + c * 3) % 13) as f32 * 0.25 - 1.0);
    for kind in [ScheduleKind::ThreadMapped, ScheduleKind::MergePath] {
        let clean = kernels::spmm::spmm(&spec, &a, &b, kind).expect("clean spmm");
        for (pname, plan) in non_fatal_plans() {
            let faulted =
                fault::scoped(plan, || kernels::spmm::spmm(&spec, &a, &b, kind)).expect("spmm");
            assert_eq!(
                bits(clean.c.as_slice()),
                bits(faulted.c.as_slice()),
                "spmm {kind} plan={pname}"
            );
        }
    }
}

#[test]
fn bfs_levels_are_exactly_fault_invariant_across_all_schedules() {
    let spec = GpuSpec::v100();
    let g = Graph::from_generator(sparse::gen::rmat(10, 8, (0.57, 0.19, 0.19), 31));
    let src = 0usize;
    let want = reference::bfs_ref(g.adjacency(), src);
    for kind in SCHEDULES {
        let clean = kernels::bfs::bfs(&spec, &g, src, kind).expect("clean bfs");
        assert_eq!(clean.depth, want, "clean {kind} matches reference");
        for (pname, plan) in non_fatal_plans() {
            let faulted =
                fault::scoped(plan, || kernels::bfs::bfs(&spec, &g, src, kind)).expect("bfs");
            assert_eq!(faulted.depth, want, "bfs {kind} plan={pname}");
            assert_eq!(faulted.iterations, clean.iterations, "bfs {kind} plan={pname}");
        }
    }
}

#[test]
fn degraded_sms_stretch_timing_without_touching_results() {
    let spec = GpuSpec::v100();
    let a = sparse::gen::powerlaw(3_000, 3_000, 50_000, 1.8, 41);
    let x = sparse::dense::test_vector(a.cols());
    for kind in SCHEDULES {
        let clean = kernels::spmv(&spec, &a, &x, kind).expect("clean");
        let plan = FaultPlan::healthy(7).with_degraded_sms(1.0, 0.25, 0.5);
        let slow = fault::scoped(plan, || kernels::spmv(&spec, &a, &x, kind)).expect("slow");
        assert_eq!(bits(&clean.y), bits(&slow.y), "{kind}");
        assert!(
            slow.report.elapsed_ms() > clean.report.elapsed_ms(),
            "{kind}: every SM at 2-4x slower must stretch elapsed ({} vs {})",
            slow.report.elapsed_ms(),
            clean.report.elapsed_ms()
        );
        // Determinism: the same plan reproduces the same stretched time.
        let again = fault::scoped(plan, || kernels::spmv(&spec, &a, &x, kind)).expect("again");
        assert_eq!(
            again.report.elapsed_ms().to_bits(),
            slow.report.elapsed_ms().to_bits(),
            "{kind}: seeded faults are bitwise repeatable"
        );
    }
}

// ---- failover integration -------------------------------------------

fn request_stream(matrices: &[Arc<Csr<f32>>], n: usize, interarrival: f64) -> Vec<Request> {
    (0..n)
        .map(|i| {
            let m = &matrices[i % matrices.len()];
            Request {
                id: i as u64,
                tenant: (i % matrices.len()) as u32,
                matrix: Arc::clone(m),
                x: Arc::from(sparse::dense::test_vector(m.cols()).into_boxed_slice()),
                arrival_ms: i as f64 * interarrival,
            }
        })
        .collect()
}

#[test]
fn device_killed_mid_workload_loses_nothing_and_answers_correctly() {
    let matrices: Vec<Arc<Csr<f32>>> = (0..3)
        .map(|i| Arc::new(sparse::gen::powerlaw(1_500 + 300 * i, 1_500 + 300 * i, 20_000, 1.6, 60 + i as u64)))
        .collect();
    let reqs = request_stream(&matrices, 50, 0.02);
    let cfg = RuntimeConfig {
        devices: 2,
        keep_results: true,
        ..RuntimeConfig::default()
    };

    // Fault-free baseline for the answers.
    let mut clean_rt = Runtime::new(GpuSpec::v100(), cfg);
    let clean = clean_rt.serve(&reqs).expect("clean serve");

    // Kill device 0 at a seeded tick in the middle of the workload.
    let mut rt = Runtime::new(GpuSpec::v100(), cfg);
    rt.set_fault_plan(0, FaultPlan::healthy(61).with_kill_at(0.4));
    let out = rt.serve(&reqs).expect("chaos serve");

    // Zero lost, zero duplicated: every id completes exactly once.
    assert_eq!(out.report.served, 50);
    assert_eq!(out.report.failed + out.report.rejected + out.report.deadline_missed, 0);
    assert!(out.report.reconciles(), "accounting balances");
    let mut ids: Vec<u64> = out.completions.iter().map(|c| c.id).collect();
    ids.sort_unstable();
    assert_eq!(ids, (0..50).collect::<Vec<u64>>());

    // Responses are correct: bitwise identical to the fault-free serve
    // (faults reroute and retime work; the numerics never move).
    for c in &out.completions {
        let baseline = clean
            .completions
            .iter()
            .find(|b| b.id == c.id)
            .expect("id served in baseline");
        assert_eq!(
            bits(c.y.as_ref().expect("kept")),
            bits(baseline.y.as_ref().expect("kept")),
            "request {} answer must survive failover",
            c.id
        );
    }

    // The dead device was discovered (counted as an eviction) and no
    // work landed on it after the kill tick.
    assert!(out.report.device_evictions >= 1);
    for c in &out.completions {
        if c.start_ms >= 0.4 {
            assert_eq!(c.device, 1, "request {} ran on the dead device", c.id);
        }
    }

    // Determinism: the same seed reproduces the same chaos byte-for-byte.
    let mut rt2 = Runtime::new(GpuSpec::v100(), cfg);
    rt2.set_fault_plan(0, FaultPlan::healthy(61).with_kill_at(0.4));
    let out2 = rt2.serve(&reqs).expect("chaos serve 2");
    assert_eq!(out.report, out2.report);
    for (a, b) in out.completions.iter().zip(&out2.completions) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.end_ms.to_bits(), b.end_ms.to_bits());
        assert_eq!(a.attempts, b.attempts);
    }
}

// ---- batcher edge cases ---------------------------------------------

fn tiny_matrices(n: usize) -> Vec<Arc<Csr<f32>>> {
    (0..n)
        .map(|i| Arc::new(sparse::gen::uniform(64, 64, 500, 300 + i as u64)) as Arc<Csr<f32>>)
        .collect()
}

#[test]
fn batch_survives_mid_batch_device_eviction() {
    // Tiny requests join a batch; by the time the window closes, the
    // preferred device is dead. The whole fused launch must fail over
    // intact — no member lost, none duplicated.
    let ms = tiny_matrices(4);
    let reqs = request_stream(&ms, 8, 0.001); // all inside one window
    let mut rt = Runtime::new(
        GpuSpec::v100(),
        RuntimeConfig {
            devices: 2,
            keep_results: true,
            ..RuntimeConfig::default()
        },
    );
    // Dead before the 0.05 ms batch window can close.
    rt.set_fault_plan(0, FaultPlan::healthy(70).with_kill_at(0.0));
    let out = rt.serve(&reqs).expect("serve");
    assert_eq!(out.report.served, 8);
    assert!(out.report.batches >= 1, "tiny requests still coalesce");
    assert!(out.report.reconciles());
    let mut ids: Vec<u64> = out.completions.iter().map(|c| c.id).collect();
    ids.sort_unstable();
    assert_eq!(ids, (0..8).collect::<Vec<u64>>());
    assert!(
        out.completions.iter().all(|c| c.device == 1),
        "every member of the batch landed on the survivor"
    );
    // Correct answers even through the failover.
    for c in &out.completions {
        let r = &reqs[c.id as usize];
        let want = r.matrix.spmv_ref(&r.x);
        let got = c.y.as_ref().expect("kept");
        let err = kernels::spmv::max_rel_error(got, &want);
        assert!(err < 2e-3, "request {} err {err}", c.id);
    }
}

#[test]
fn batch_can_time_out_whole() {
    // Every member's deadline expires inside the batch window: the batch
    // dissolves without launching anything, and each member is
    // accounted a deadline miss.
    let ms = tiny_matrices(2);
    let reqs = request_stream(&ms, 4, 0.0); // all arrive at t=0
    let mut rt = Runtime::new(
        GpuSpec::v100(),
        RuntimeConfig {
            batch_window_ms: 0.5,
            batch_max: 16, // window, not capacity, closes the batch
            deadline_ms: 0.1,
            ..RuntimeConfig::default()
        },
    );
    let out = rt.serve(&reqs).expect("serve");
    assert_eq!(out.report.served, 0);
    assert_eq!(out.report.deadline_missed, 4);
    assert_eq!(out.report.batches, 0, "a fully-expired batch never launches");
    assert!(out.report.reconciles());
    assert_eq!(out.dropped.len(), 4);
    assert!(out
        .dropped
        .iter()
        .all(|d| d.reason == DropReason::DeadlineMissed));
}

#[test]
fn single_member_batch_serves_as_solo_launch() {
    // One tiny request with no batch-mates: the window closes on a
    // "batch" of one, which must serve correctly and not be counted as
    // a batch.
    let ms = tiny_matrices(1);
    let reqs = request_stream(&ms, 1, 0.0);
    let mut rt = Runtime::new(
        GpuSpec::v100(),
        RuntimeConfig {
            keep_results: true,
            ..RuntimeConfig::default()
        },
    );
    let out = rt.serve(&reqs).expect("serve");
    assert_eq!(out.report.served, 1);
    assert_eq!(out.report.batches, 0, "one member is not a batch");
    assert_eq!(out.report.batched_requests, 0);
    assert!(out.report.reconciles());
    let c = &out.completions[0];
    assert!(!c.batched);
    let want = reqs[0].matrix.spmv_ref(&reqs[0].x);
    let err = kernels::spmv::max_rel_error(c.y.as_ref().expect("kept"), &want);
    assert!(err < 2e-3, "solo tiny request err {err}");
}
