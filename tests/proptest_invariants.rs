//! Property-based invariants across the workspace: schedule partitions
//! are exact for *arbitrary* tile sets, format conversions round-trip,
//! and every SpMV agrees with the reference on random matrices.
//!
//! The proptest crate is unavailable offline, so these properties are
//! exercised the same way with a seeded in-repo generator
//! ([`sparse::Prng`]): each property runs over dozens of randomly drawn
//! cases and every failure message carries the case's inputs, so a
//! reproduction is one seed away.

use loops::schedule::{GroupMappedSchedule, MergePathSchedule, ScheduleKind};
use loops::work::{CountedTiles, TileSet};
use simt::{GpuSpec, LaunchConfig};
use sparse::Prng;

const CASES: usize = 48;

/// Random tile-length vector: up to `max_tiles` tiles of up to `max_len`.
fn random_counts(rng: &mut Prng, max_tiles: usize, max_len: usize) -> Vec<usize> {
    let n = rng.index(0, max_tiles + 1);
    (0..n).map(|_| rng.index(0, max_len)).collect()
}

/// Collect the atoms each merge-path thread claims and check the exact
/// partition property.
fn merge_path_partitions_exactly(counts: Vec<usize>, ipt: usize) {
    let w = CountedTiles::from_counts(counts.clone());
    let sched = MergePathSchedule::new(&w, ipt);
    let spec = GpuSpec::test_tiny();
    let cfg = sched.launch_config(8);
    let mut seen = vec![0u32; w.num_atoms().max(1)];
    {
        let gs = simt::GlobalMem::new(&mut seen);
        simt::launch_threads(&spec, cfg, |t| {
            for span in sched.spans(t) {
                let tile_range = w.tile_atoms(span.tile);
                assert!(span.atoms.start >= tile_range.start);
                assert!(span.atoms.end <= tile_range.end);
                if span.complete {
                    assert_eq!(span.atoms, tile_range);
                }
                for a in span.atoms.clone() {
                    gs.fetch_add(a, 1);
                }
            }
        })
        .unwrap();
    }
    if w.num_atoms() > 0 {
        assert!(
            seen.iter().all(|&c| c == 1),
            "every atom exactly once: ipt={ipt} counts={counts:?}"
        );
    }
}

/// Group-mapped coverage with correct tile attribution.
fn group_mapped_covers_exactly(counts: Vec<usize>, group_size: u32) {
    let w = CountedTiles::from_counts(counts.clone());
    let sched = GroupMappedSchedule::new(&w, group_size);
    let spec = GpuSpec::test_tiny();
    let block = 16u32;
    let cfg = LaunchConfig::new(2, block).with_shared(sched.shared_bytes(block));
    let mut seen = vec![0u32; w.num_atoms().max(1)];
    {
        let gs = simt::GlobalMem::new(&mut seen);
        simt::launch_groups(&spec, cfg, group_size, |g| {
            sched.process(g, |_, tile, atom| {
                assert!(w.tile_atoms(tile).contains(&atom), "atom in claimed tile");
                gs.fetch_add(atom, 1);
            });
        })
        .unwrap();
    }
    if w.num_atoms() > 0 {
        assert!(
            seen.iter().all(|&c| c == 1),
            "group_size={group_size} counts={counts:?}"
        );
    }
}

#[test]
fn merge_path_partition_property() {
    let mut rng = Prng::seed_from_u64(0x6d65_7267);
    for _ in 0..CASES {
        let counts = random_counts(&mut rng, 80, 60);
        let ipt = rng.index(1, 20);
        merge_path_partitions_exactly(counts, ipt);
    }
}

#[test]
fn group_mapped_partition_property() {
    let mut rng = Prng::seed_from_u64(0x6772_6f75);
    for _ in 0..CASES {
        let counts = random_counts(&mut rng, 80, 60);
        // Group sizes 1, 2, 4, 8, 16 — all divide block 16.
        let gs_pow = rng.index(0, 5) as u32;
        group_mapped_covers_exactly(counts, 1 << gs_pow);
    }
}

#[test]
fn csr_coo_csc_roundtrips() {
    let mut rng = Prng::seed_from_u64(0x726f_756e);
    for case in 0..CASES {
        let n = rng.index(0, 200);
        let entries: Vec<(u32, u32, f32)> = (0..n)
            .map(|_| {
                (
                    rng.index(0, 40) as u32,
                    rng.index(0, 30) as u32,
                    rng.index(0, 20) as f32 - 10.0,
                )
            })
            .collect();
        let mut coo = sparse::Coo::empty(40, 30);
        for &(r, c, v) in &entries {
            coo.push(r, c, v).unwrap();
        }
        coo.canonicalize();
        let csr = sparse::convert::coo_to_csr(&coo);
        // CSR ↔ COO
        let back = sparse::convert::coo_to_csr(&sparse::convert::csr_to_coo(&csr));
        assert_eq!(csr, back, "case {case}");
        // transpose(transpose) = id
        let tt = sparse::convert::transpose(&sparse::convert::transpose(&csr));
        assert_eq!(csr, tt, "case {case}");
        // CSC SpMV equivalence
        let x = sparse::dense::test_vector(30);
        let csc = sparse::convert::csr_to_csc(&csr);
        let (y1, y2) = (csr.spmv_ref(&x), csc.spmv_ref(&x));
        for (a, b) in y1.iter().zip(&y2) {
            assert!((a - b).abs() < 1e-3 * a.abs().max(1.0), "case {case}");
        }
    }
}

#[test]
fn spmv_schedules_agree_on_random_matrices() {
    let mut rng = Prng::seed_from_u64(0x7370_6d76);
    for _ in 0..CASES {
        let rows = rng.index(1, 120);
        let cols = rng.index(1, 120);
        let density_pct = rng.index(0, 40);
        let seed = rng.index(0, 1000) as u64;
        let nnz = rows * cols * density_pct / 100;
        let a = sparse::gen::uniform(rows, cols, nnz, seed);
        let x = sparse::dense::test_vector(cols);
        let want = a.spmv_ref(&x);
        let spec = GpuSpec::test_tiny();
        for kind in [
            ScheduleKind::ThreadMapped,
            ScheduleKind::MergePath,
            ScheduleKind::WarpMapped,
        ] {
            let run = kernels::spmv(&spec, &a, &x, kind).unwrap();
            let err = kernels::spmv::max_rel_error(&run.y, &want);
            assert!(err < 2e-3, "{kind} err {err} on {rows}x{cols} seed {seed}");
        }
    }
}

#[test]
fn random_fault_plans_never_perturb_spmv_results() {
    // Property: for ANY non-fatal fault plan — random seed, degrade
    // probability/range, launch-failure rate, stall window — and any
    // schedule, SpMV under `fault::scoped` is bitwise identical to the
    // fault-free run. Faults may stretch simulated time; results are
    // computed functionally and must not move.
    let mut rng = Prng::seed_from_u64(0x6661_756c);
    let schedules = [
        ScheduleKind::ThreadMapped,
        ScheduleKind::WarpMapped,
        ScheduleKind::BlockMapped,
        ScheduleKind::MergePath,
        ScheduleKind::WorkQueue(256),
        ScheduleKind::Lrb,
    ];
    for case in 0..CASES {
        let rows = rng.index(1, 150);
        let cols = rng.index(1, 150);
        let nnz = rows * cols * rng.index(0, 30) / 100;
        let mseed = rng.index(0, 1000) as u64;
        let a = sparse::gen::uniform(rows, cols, nnz, mseed);
        let x = sparse::dense::test_vector(cols);
        let kind = schedules[rng.index(0, schedules.len())];

        let mut plan = simt::FaultPlan::healthy(rng.index(0, 1 << 30) as u64);
        if rng.chance(0.7) {
            let lo = rng.f64_range(0.05, 0.6);
            let hi = rng.f64_range(lo, 1.0);
            plan = plan.with_degraded_sms(rng.f64(), lo, hi);
        }
        if rng.chance(0.5) {
            plan = plan.with_flaky_launches(rng.f64_range(0.0, 0.8));
        }
        if rng.chance(0.5) {
            plan = plan.with_stall(rng.f64_range(0.0, 1.0), rng.f64_range(0.0, 5.0));
        }
        assert!(!plan.is_fatal());

        let spec = GpuSpec::test_tiny();
        let clean = kernels::spmv(&spec, &a, &x, kind).unwrap();
        let faulted = simt::fault::scoped(plan, || kernels::spmv(&spec, &a, &x, kind)).unwrap();
        let (cb, fb): (Vec<u32>, Vec<u32>) = (
            clean.y.iter().map(|v| v.to_bits()).collect(),
            faulted.y.iter().map(|v| v.to_bits()).collect(),
        );
        assert_eq!(
            cb, fb,
            "case {case}: {kind} {rows}x{cols} nnz={nnz} mseed={mseed} plan={plan:?}"
        );
    }
}

#[test]
fn parallel_host_backend_matches_sequential_on_random_cases() {
    // Property: for ANY random matrix, schedule, and worker-thread
    // count, the parallel host backend's results and launch report
    // (minus the host wall-clock diagnostic) are bitwise identical to
    // the sequential backend's. This is the randomized counterpart of
    // the fixed matrix in `tests/host_parallel.rs`.
    let mut rng = Prng::seed_from_u64(0x686f_7374);
    let schedules = [
        ScheduleKind::ThreadMapped,
        ScheduleKind::WarpMapped,
        ScheduleKind::BlockMapped,
        ScheduleKind::GroupMapped(16),
        ScheduleKind::MergePath,
        ScheduleKind::WorkQueue(8),
        ScheduleKind::Lrb,
    ];
    for case in 0..CASES {
        let rows = rng.index(1, 250);
        let cols = rng.index(1, 250);
        let nnz = rows * cols * rng.index(0, 30) / 100;
        let mseed = rng.index(0, 1000) as u64;
        let a = sparse::gen::powerlaw(rows, cols, nnz, 1.4 + 0.1 * (case % 8) as f64, mseed);
        let x = sparse::dense::test_vector(cols);
        let kind = schedules[rng.index(0, schedules.len())];
        let threads = [2usize, 3, 4, 8][rng.index(0, 4)];
        let spec = GpuSpec::test_tiny();

        let strip = |mut r: simt::LaunchReport| {
            r.host_wall_ms = 0.0;
            r
        };
        let seq = kernels::spmv(&spec, &a, &x, kind).unwrap();
        let par = simt::host::scoped(simt::HostBackend::Parallel { threads }, || {
            kernels::spmv(&spec, &a, &x, kind)
        })
        .unwrap();
        let (sb, pb): (Vec<u32>, Vec<u32>) = (
            seq.y.iter().map(|v| v.to_bits()).collect(),
            par.y.iter().map(|v| v.to_bits()).collect(),
        );
        assert_eq!(
            sb, pb,
            "case {case}: {kind} {rows}x{cols} nnz={nnz} mseed={mseed} threads={threads}"
        );
        assert_eq!(seq.schedule, par.schedule, "case {case}: resolved schedule moved");
        assert_eq!(
            strip(seq.report),
            strip(par.report),
            "case {case}: {kind} threads={threads} launch report diverged"
        );
    }
}

#[test]
fn fault_plans_inject_identically_under_the_parallel_backend() {
    // Property: a thread-scoped `FaultPlan` must produce the *same*
    // injected failures, degraded timing, and results whether blocks
    // execute sequentially or on worker threads — the worker threads
    // re-install the caller's fault scope, so fault streams stay keyed
    // to the launch, never to the executing thread.
    let mut rng = Prng::seed_from_u64(0x6661_7568);
    for case in 0..24 {
        let rows = rng.index(1, 150);
        let cols = rng.index(1, 150);
        let nnz = rows * cols * rng.index(0, 30) / 100;
        let mseed = rng.index(0, 1000) as u64;
        let a = sparse::gen::uniform(rows, cols, nnz, mseed);
        let x = sparse::dense::test_vector(cols);
        let kind = [
            ScheduleKind::ThreadMapped,
            ScheduleKind::MergePath,
            ScheduleKind::WarpMapped,
            ScheduleKind::Lrb,
        ][rng.index(0, 4)];
        let threads = [2usize, 4, 8][rng.index(0, 3)];

        let mut plan = simt::FaultPlan::healthy(rng.index(0, 1 << 30) as u64);
        let lo = rng.f64_range(0.05, 0.6);
        let hi = rng.f64_range(lo, 1.0);
        plan = plan.with_degraded_sms(rng.f64_range(0.2, 1.0), lo, hi);
        if rng.chance(0.5) {
            plan = plan.with_stall(rng.f64_range(0.0, 1.0), rng.f64_range(0.0, 5.0));
        }

        let spec = GpuSpec::test_tiny();
        let strip = |mut r: simt::LaunchReport| {
            r.host_wall_ms = 0.0;
            r
        };
        let seq = simt::fault::scoped(plan, || kernels::spmv(&spec, &a, &x, kind)).unwrap();
        let par = simt::host::scoped(simt::HostBackend::Parallel { threads }, || {
            simt::fault::scoped(plan, || kernels::spmv(&spec, &a, &x, kind))
        })
        .unwrap();
        let (sb, pb): (Vec<u32>, Vec<u32>) = (
            seq.y.iter().map(|v| v.to_bits()).collect(),
            par.y.iter().map(|v| v.to_bits()).collect(),
        );
        assert_eq!(sb, pb, "case {case}: results moved under faults, plan={plan:?}");
        assert_eq!(
            strip(seq.report),
            strip(par.report),
            "case {case}: {kind} threads={threads} degraded timing diverged, plan={plan:?}"
        );
    }
}

#[test]
fn row_stats_invariants() {
    let mut rng = Prng::seed_from_u64(0x7374_6174);
    for _ in 0..CASES {
        let n = rng.index(1, 200);
        let lengths: Vec<usize> = (0..n).map(|_| rng.index(0, 500)).collect();
        let s = sparse::RowStats::from_lengths(&lengths);
        assert!(s.min <= s.max);
        assert!((0.0..=1.0).contains(&s.gini), "lengths={lengths:?}");
        assert!((0.0..=1.0).contains(&s.empty_frac));
        assert!(s.mean >= 0.0);
        if s.nnz > 0 {
            assert!(s.max_over_mean >= 1.0 - 1e-9);
        }
    }
}

#[test]
fn counted_tiles_total_matches_sum() {
    let mut rng = Prng::seed_from_u64(0x7469_6c65);
    for _ in 0..CASES {
        let counts = random_counts(&mut rng, 100, 1000);
        let total: usize = counts.iter().sum();
        let w = CountedTiles::from_counts(counts.clone());
        assert_eq!(w.num_atoms(), total);
        assert_eq!(w.num_tiles(), counts.len());
        for (t, &c) in counts.iter().enumerate() {
            assert_eq!(w.atoms_in_tile(t), c);
        }
        assert!(w.validate());
    }
}
