//! Property-based invariants across the workspace: schedule partitions
//! are exact for *arbitrary* tile sets, format conversions round-trip,
//! and every SpMV agrees with the reference on random matrices.
//!
//! The proptest crate is unavailable offline, so these properties are
//! exercised the same way with a seeded in-repo generator
//! ([`sparse::Prng`]): each property runs over dozens of randomly drawn
//! cases and every failure message carries the case's inputs, so a
//! reproduction is one seed away.

use loops::schedule::{GroupMappedSchedule, MergePathSchedule, ScheduleKind};
use loops::work::{CountedTiles, TileSet};
use simt::{GpuSpec, LaunchConfig};
use sparse::Prng;

const CASES: usize = 48;

/// Random tile-length vector: up to `max_tiles` tiles of up to `max_len`.
fn random_counts(rng: &mut Prng, max_tiles: usize, max_len: usize) -> Vec<usize> {
    let n = rng.index(0, max_tiles + 1);
    (0..n).map(|_| rng.index(0, max_len)).collect()
}

/// Collect the atoms each merge-path thread claims and check the exact
/// partition property.
fn merge_path_partitions_exactly(counts: Vec<usize>, ipt: usize) {
    let w = CountedTiles::from_counts(counts.clone());
    let sched = MergePathSchedule::new(&w, ipt);
    let spec = GpuSpec::test_tiny();
    let cfg = sched.launch_config(8);
    let mut seen = vec![0u32; w.num_atoms().max(1)];
    {
        let gs = simt::GlobalMem::new(&mut seen);
        simt::launch_threads(&spec, cfg, |t| {
            for span in sched.spans(t) {
                let tile_range = w.tile_atoms(span.tile);
                assert!(span.atoms.start >= tile_range.start);
                assert!(span.atoms.end <= tile_range.end);
                if span.complete {
                    assert_eq!(span.atoms, tile_range);
                }
                for a in span.atoms.clone() {
                    gs.fetch_add(a, 1);
                }
            }
        })
        .unwrap();
    }
    if w.num_atoms() > 0 {
        assert!(
            seen.iter().all(|&c| c == 1),
            "every atom exactly once: ipt={ipt} counts={counts:?}"
        );
    }
}

/// Group-mapped coverage with correct tile attribution.
fn group_mapped_covers_exactly(counts: Vec<usize>, group_size: u32) {
    let w = CountedTiles::from_counts(counts.clone());
    let sched = GroupMappedSchedule::new(&w, group_size);
    let spec = GpuSpec::test_tiny();
    let block = 16u32;
    let cfg = LaunchConfig::new(2, block).with_shared(sched.shared_bytes(block));
    let mut seen = vec![0u32; w.num_atoms().max(1)];
    {
        let gs = simt::GlobalMem::new(&mut seen);
        simt::launch_groups(&spec, cfg, group_size, |g| {
            sched.process(g, |_, tile, atom| {
                assert!(w.tile_atoms(tile).contains(&atom), "atom in claimed tile");
                gs.fetch_add(atom, 1);
            });
        })
        .unwrap();
    }
    if w.num_atoms() > 0 {
        assert!(
            seen.iter().all(|&c| c == 1),
            "group_size={group_size} counts={counts:?}"
        );
    }
}

#[test]
fn merge_path_partition_property() {
    let mut rng = Prng::seed_from_u64(0x6d65_7267);
    for _ in 0..CASES {
        let counts = random_counts(&mut rng, 80, 60);
        let ipt = rng.index(1, 20);
        merge_path_partitions_exactly(counts, ipt);
    }
}

#[test]
fn group_mapped_partition_property() {
    let mut rng = Prng::seed_from_u64(0x6772_6f75);
    for _ in 0..CASES {
        let counts = random_counts(&mut rng, 80, 60);
        // Group sizes 1, 2, 4, 8, 16 — all divide block 16.
        let gs_pow = rng.index(0, 5) as u32;
        group_mapped_covers_exactly(counts, 1 << gs_pow);
    }
}

#[test]
fn csr_coo_csc_roundtrips() {
    let mut rng = Prng::seed_from_u64(0x726f_756e);
    for case in 0..CASES {
        let n = rng.index(0, 200);
        let entries: Vec<(u32, u32, f32)> = (0..n)
            .map(|_| {
                (
                    rng.index(0, 40) as u32,
                    rng.index(0, 30) as u32,
                    rng.index(0, 20) as f32 - 10.0,
                )
            })
            .collect();
        let mut coo = sparse::Coo::empty(40, 30);
        for &(r, c, v) in &entries {
            coo.push(r, c, v).unwrap();
        }
        coo.canonicalize();
        let csr = sparse::convert::coo_to_csr(&coo);
        // CSR ↔ COO
        let back = sparse::convert::coo_to_csr(&sparse::convert::csr_to_coo(&csr));
        assert_eq!(csr, back, "case {case}");
        // transpose(transpose) = id
        let tt = sparse::convert::transpose(&sparse::convert::transpose(&csr));
        assert_eq!(csr, tt, "case {case}");
        // CSC SpMV equivalence
        let x = sparse::dense::test_vector(30);
        let csc = sparse::convert::csr_to_csc(&csr);
        let (y1, y2) = (csr.spmv_ref(&x), csc.spmv_ref(&x));
        for (a, b) in y1.iter().zip(&y2) {
            assert!((a - b).abs() < 1e-3 * a.abs().max(1.0), "case {case}");
        }
    }
}

#[test]
fn spmv_schedules_agree_on_random_matrices() {
    let mut rng = Prng::seed_from_u64(0x7370_6d76);
    for _ in 0..CASES {
        let rows = rng.index(1, 120);
        let cols = rng.index(1, 120);
        let density_pct = rng.index(0, 40);
        let seed = rng.index(0, 1000) as u64;
        let nnz = rows * cols * density_pct / 100;
        let a = sparse::gen::uniform(rows, cols, nnz, seed);
        let x = sparse::dense::test_vector(cols);
        let want = a.spmv_ref(&x);
        let spec = GpuSpec::test_tiny();
        for kind in [
            ScheduleKind::ThreadMapped,
            ScheduleKind::MergePath,
            ScheduleKind::WarpMapped,
        ] {
            let run = kernels::spmv(&spec, &a, &x, kind).unwrap();
            let err = kernels::spmv::max_rel_error(&run.y, &want);
            assert!(err < 2e-3, "{kind} err {err} on {rows}x{cols} seed {seed}");
        }
    }
}

#[test]
fn random_fault_plans_never_perturb_spmv_results() {
    // Property: for ANY non-fatal fault plan — random seed, degrade
    // probability/range, launch-failure rate, stall window — and any
    // schedule, SpMV under `fault::scoped` is bitwise identical to the
    // fault-free run. Faults may stretch simulated time; results are
    // computed functionally and must not move.
    let mut rng = Prng::seed_from_u64(0x6661_756c);
    let schedules = [
        ScheduleKind::ThreadMapped,
        ScheduleKind::WarpMapped,
        ScheduleKind::BlockMapped,
        ScheduleKind::MergePath,
        ScheduleKind::WorkQueue(256),
        ScheduleKind::Lrb,
    ];
    for case in 0..CASES {
        let rows = rng.index(1, 150);
        let cols = rng.index(1, 150);
        let nnz = rows * cols * rng.index(0, 30) / 100;
        let mseed = rng.index(0, 1000) as u64;
        let a = sparse::gen::uniform(rows, cols, nnz, mseed);
        let x = sparse::dense::test_vector(cols);
        let kind = schedules[rng.index(0, schedules.len())];

        let mut plan = simt::FaultPlan::healthy(rng.index(0, 1 << 30) as u64);
        if rng.chance(0.7) {
            let lo = rng.f64_range(0.05, 0.6);
            let hi = rng.f64_range(lo, 1.0);
            plan = plan.with_degraded_sms(rng.f64(), lo, hi);
        }
        if rng.chance(0.5) {
            plan = plan.with_flaky_launches(rng.f64_range(0.0, 0.8));
        }
        if rng.chance(0.5) {
            plan = plan.with_stall(rng.f64_range(0.0, 1.0), rng.f64_range(0.0, 5.0));
        }
        assert!(!plan.is_fatal());

        let spec = GpuSpec::test_tiny();
        let clean = kernels::spmv(&spec, &a, &x, kind).unwrap();
        let faulted = simt::fault::scoped(plan, || kernels::spmv(&spec, &a, &x, kind)).unwrap();
        let (cb, fb): (Vec<u32>, Vec<u32>) = (
            clean.y.iter().map(|v| v.to_bits()).collect(),
            faulted.y.iter().map(|v| v.to_bits()).collect(),
        );
        assert_eq!(
            cb, fb,
            "case {case}: {kind} {rows}x{cols} nnz={nnz} mseed={mseed} plan={plan:?}"
        );
    }
}

#[test]
fn parallel_host_backend_matches_sequential_on_random_cases() {
    // Property: for ANY random matrix, schedule, and worker-thread
    // count, the parallel host backend's results and launch report
    // (minus the host wall-clock diagnostic) are bitwise identical to
    // the sequential backend's. This is the randomized counterpart of
    // the fixed matrix in `tests/host_parallel.rs`.
    let mut rng = Prng::seed_from_u64(0x686f_7374);
    let schedules = [
        ScheduleKind::ThreadMapped,
        ScheduleKind::WarpMapped,
        ScheduleKind::BlockMapped,
        ScheduleKind::GroupMapped(16),
        ScheduleKind::MergePath,
        ScheduleKind::WorkQueue(8),
        ScheduleKind::Lrb,
    ];
    for case in 0..CASES {
        let rows = rng.index(1, 250);
        let cols = rng.index(1, 250);
        let nnz = rows * cols * rng.index(0, 30) / 100;
        let mseed = rng.index(0, 1000) as u64;
        let a = sparse::gen::powerlaw(rows, cols, nnz, 1.4 + 0.1 * (case % 8) as f64, mseed);
        let x = sparse::dense::test_vector(cols);
        let kind = schedules[rng.index(0, schedules.len())];
        let threads = [2usize, 3, 4, 8][rng.index(0, 4)];
        let spec = GpuSpec::test_tiny();

        let strip = |mut r: simt::LaunchReport| {
            r.host_wall_ms = 0.0;
            r
        };
        let seq = kernels::spmv(&spec, &a, &x, kind).unwrap();
        let par = simt::host::scoped(simt::HostBackend::Parallel { threads }, || {
            kernels::spmv(&spec, &a, &x, kind)
        })
        .unwrap();
        let (sb, pb): (Vec<u32>, Vec<u32>) = (
            seq.y.iter().map(|v| v.to_bits()).collect(),
            par.y.iter().map(|v| v.to_bits()).collect(),
        );
        assert_eq!(
            sb, pb,
            "case {case}: {kind} {rows}x{cols} nnz={nnz} mseed={mseed} threads={threads}"
        );
        assert_eq!(seq.schedule, par.schedule, "case {case}: resolved schedule moved");
        assert_eq!(
            strip(seq.report),
            strip(par.report),
            "case {case}: {kind} threads={threads} launch report diverged"
        );
    }
}

#[test]
fn fault_plans_inject_identically_under_the_parallel_backend() {
    // Property: a thread-scoped `FaultPlan` must produce the *same*
    // injected failures, degraded timing, and results whether blocks
    // execute sequentially or on worker threads — the worker threads
    // re-install the caller's fault scope, so fault streams stay keyed
    // to the launch, never to the executing thread.
    let mut rng = Prng::seed_from_u64(0x6661_7568);
    for case in 0..24 {
        let rows = rng.index(1, 150);
        let cols = rng.index(1, 150);
        let nnz = rows * cols * rng.index(0, 30) / 100;
        let mseed = rng.index(0, 1000) as u64;
        let a = sparse::gen::uniform(rows, cols, nnz, mseed);
        let x = sparse::dense::test_vector(cols);
        let kind = [
            ScheduleKind::ThreadMapped,
            ScheduleKind::MergePath,
            ScheduleKind::WarpMapped,
            ScheduleKind::Lrb,
        ][rng.index(0, 4)];
        let threads = [2usize, 4, 8][rng.index(0, 3)];

        let mut plan = simt::FaultPlan::healthy(rng.index(0, 1 << 30) as u64);
        let lo = rng.f64_range(0.05, 0.6);
        let hi = rng.f64_range(lo, 1.0);
        plan = plan.with_degraded_sms(rng.f64_range(0.2, 1.0), lo, hi);
        if rng.chance(0.5) {
            plan = plan.with_stall(rng.f64_range(0.0, 1.0), rng.f64_range(0.0, 5.0));
        }

        let spec = GpuSpec::test_tiny();
        let strip = |mut r: simt::LaunchReport| {
            r.host_wall_ms = 0.0;
            r
        };
        let seq = simt::fault::scoped(plan, || kernels::spmv(&spec, &a, &x, kind)).unwrap();
        let par = simt::host::scoped(simt::HostBackend::Parallel { threads }, || {
            simt::fault::scoped(plan, || kernels::spmv(&spec, &a, &x, kind))
        })
        .unwrap();
        let (sb, pb): (Vec<u32>, Vec<u32>) = (
            seq.y.iter().map(|v| v.to_bits()).collect(),
            par.y.iter().map(|v| v.to_bits()).collect(),
        );
        assert_eq!(sb, pb, "case {case}: results moved under faults, plan={plan:?}");
        assert_eq!(
            strip(seq.report),
            strip(par.report),
            "case {case}: {kind} threads={threads} degraded timing diverged, plan={plan:?}"
        );
    }
}

#[test]
fn format_roundtrips_preserve_triplets_on_random_matrices() {
    // Property: for ANY random matrix, every storage format preserves
    // the exact triplet set — conversion is lossless in structure and
    // in value bits. CSR is the canonical pivot: each format converts
    // out and back and must reproduce the original CSR exactly, and a
    // chained tour through every format lands back on it too.
    let mut rng = Prng::seed_from_u64(0x666d_7274);
    for case in 0..CASES {
        let rows = rng.index(1, 200);
        let cols = rng.index(1, 200);
        let nnz = rows * cols * rng.index(0, 30) / 100;
        let mseed = rng.index(0, 1000) as u64;
        let a = if rng.chance(0.5) {
            sparse::gen::powerlaw(rows, cols, nnz, 1.4 + 0.1 * (case % 8) as f64, mseed)
        } else {
            sparse::gen::uniform(rows, cols, nnz, mseed)
        };
        let ctx = format!("case {case}: {rows}x{cols} nnz={} mseed={mseed}", a.nnz());

        // CSR ↔ COO
        let coo = sparse::convert::csr_to_coo(&a);
        assert_eq!(sparse::convert::coo_to_csr(&coo), a, "{ctx}: COO");

        // CSR ↔ ELL (unbounded fill so no matrix is refused here)
        let ell = sparse::Ell::from_csr(&a, f64::INFINITY).unwrap();
        assert_eq!(ell.to_csr(), a, "{ctx}: ELL");

        // CSR ↔ hybrid, at the stats-driven split and at a random one
        let hybrid = sparse::Hybrid::from_csr_auto(&a);
        assert_eq!(hybrid.to_csr(), a, "{ctx}: hybrid(auto)");
        let max_row = a.row_lengths().into_iter().max().unwrap_or(0);
        let width = rng.index(0, max_row + 2);
        let forced = sparse::Hybrid::from_csr(&a, width);
        assert_eq!(forced.to_csr(), a, "{ctx}: hybrid(width={width})");

        // CSR ↔ CSC: same triplets, column-major order
        let csc = sparse::convert::csr_to_csc(&a);
        let mut csc_triplets: Vec<(u32, u32, u32)> = Vec::with_capacity(csc.nnz());
        for c in 0..csc.cols() {
            let (rows_in_col, vals) = csc.col(c);
            for (&r, &v) in rows_in_col.iter().zip(vals) {
                csc_triplets.push((r, c as u32, v.to_bits()));
            }
        }
        csc_triplets.sort_unstable();
        let mut csr_triplets: Vec<(u32, u32, u32)> = Vec::with_capacity(a.nnz());
        for r in 0..a.rows() {
            let (cols_in_row, vals) = a.row(r);
            for (&c, &v) in cols_in_row.iter().zip(vals) {
                csr_triplets.push((r as u32, c, v.to_bits()));
            }
        }
        csr_triplets.sort_unstable();
        assert_eq!(csc_triplets, csr_triplets, "{ctx}: CSC triplets");

        // The grand tour: CSR → ELL → CSR → COO → CSR → hybrid → CSR
        let toured = sparse::Hybrid::from_csr_auto(&sparse::convert::coo_to_csr(
            &sparse::convert::csr_to_coo(&ell.to_csr()),
        ))
        .to_csr();
        assert_eq!(toured, a, "{ctx}: chained tour");
    }
}

#[test]
fn format_generic_spmv_matches_csr_at_one_and_four_host_threads() {
    // Property: for ANY random matrix, serving format, and schedule,
    // the format-generic SpMV is bitwise identical to the CSR kernel
    // under the schedule the cell coerces to — on the sequential host
    // backend (the `LOOPS_HOST_THREADS=1` resolution) and on four
    // worker threads, with identical stripped launch reports across
    // backends.
    use kernels::formats::{coerce_for_format, spmv_format};
    use sparse::FormatKind;

    let mut rng = Prng::seed_from_u64(0x666d_7370);
    let formats = [
        FormatKind::Csr,
        FormatKind::Coo,
        FormatKind::Ell,
        FormatKind::Hybrid,
    ];
    let schedules = [
        ScheduleKind::ThreadMapped,
        ScheduleKind::WarpMapped,
        ScheduleKind::GroupMapped(16),
        ScheduleKind::MergePath,
        ScheduleKind::WorkQueue(8),
        ScheduleKind::Lrb,
    ];
    let spec = GpuSpec::test_tiny();
    let model = simt::CostModel::standard();
    let strip = |mut r: simt::LaunchReport| {
        r.host_wall_ms = 0.0;
        r
    };
    for case in 0..CASES {
        let rows = rng.index(1, 200);
        let cols = rng.index(1, 200);
        let nnz = rows * cols * rng.index(0, 25) / 100;
        let mseed = rng.index(0, 1000) as u64;
        let a = sparse::gen::powerlaw(rows, cols, nnz, 1.5 + 0.1 * (case % 6) as f64, mseed);
        let x = sparse::dense::test_vector(cols);
        let format = formats[rng.index(0, formats.len())];
        let kind = schedules[rng.index(0, schedules.len())];
        let ctx = format!("case {case}: {kind}@{format} {rows}x{cols} nnz={} mseed={mseed}", a.nnz());

        let op = kernels::PreparedOperand::prepare(&a, format).unwrap();
        let eff = coerce_for_format(format, kind);
        let want = kernels::spmv::spmv_with_model(&spec, &model, &a, &x, eff, 256).unwrap();

        let seq = spmv_format(&spec, &model, &a, &op, &x, kind, 256).unwrap();
        let par = simt::host::scoped(simt::HostBackend::Parallel { threads: 4 }, || {
            spmv_format(&spec, &model, &a, &op, &x, kind, 256)
        })
        .unwrap();

        let bits = |y: &[f32]| -> Vec<u32> { y.iter().map(|v| v.to_bits()).collect() };
        assert_eq!(bits(&seq.y), bits(&want.y), "{ctx}: sequential vs CSR");
        assert_eq!(bits(&par.y), bits(&want.y), "{ctx}: 4 threads vs CSR");
        assert_eq!(
            strip(seq.report),
            strip(par.report),
            "{ctx}: launch report diverged across backends"
        );
    }
}

#[test]
fn row_stats_invariants() {
    let mut rng = Prng::seed_from_u64(0x7374_6174);
    for _ in 0..CASES {
        let n = rng.index(1, 200);
        let lengths: Vec<usize> = (0..n).map(|_| rng.index(0, 500)).collect();
        let s = sparse::RowStats::from_lengths(&lengths);
        assert!(s.min <= s.max);
        assert!((0.0..=1.0).contains(&s.gini), "lengths={lengths:?}");
        assert!((0.0..=1.0).contains(&s.empty_frac));
        assert!(s.mean >= 0.0);
        if s.nnz > 0 {
            assert!(s.max_over_mean >= 1.0 - 1e-9);
        }
    }
}

#[test]
fn counted_tiles_total_matches_sum() {
    let mut rng = Prng::seed_from_u64(0x7469_6c65);
    for _ in 0..CASES {
        let counts = random_counts(&mut rng, 100, 1000);
        let total: usize = counts.iter().sum();
        let w = CountedTiles::from_counts(counts.clone());
        assert_eq!(w.num_atoms(), total);
        assert_eq!(w.num_tiles(), counts.len());
        for (t, &c) in counts.iter().enumerate() {
            assert_eq!(w.atoms_in_tile(t), c);
        }
        assert!(w.validate());
    }
}
