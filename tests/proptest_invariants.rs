//! Property-based invariants across the workspace: schedule partitions
//! are exact for *arbitrary* tile sets, format conversions round-trip,
//! and every SpMV agrees with the reference on random matrices.

use loops::schedule::{GroupMappedSchedule, MergePathSchedule, ScheduleKind};
use loops::work::{CountedTiles, TileSet};
use proptest::prelude::*;
use simt::{GpuSpec, LaunchConfig};

/// Collect the atoms each merge-path thread claims and check the exact
/// partition property.
fn merge_path_partitions_exactly(counts: Vec<usize>, ipt: usize) {
    let w = CountedTiles::from_counts(counts);
    let sched = MergePathSchedule::new(&w, ipt);
    let spec = GpuSpec::test_tiny();
    let cfg = sched.launch_config(8);
    let mut seen = vec![0u32; w.num_atoms().max(1)];
    {
        let gs = simt::GlobalMem::new(&mut seen);
        simt::launch_threads(&spec, cfg, |t| {
            for span in sched.spans(t) {
                let tile_range = w.tile_atoms(span.tile);
                assert!(span.atoms.start >= tile_range.start);
                assert!(span.atoms.end <= tile_range.end);
                if span.complete {
                    assert_eq!(span.atoms, tile_range);
                }
                for a in span.atoms.clone() {
                    gs.fetch_add(a, 1);
                }
            }
        })
        .unwrap();
    }
    if w.num_atoms() > 0 {
        assert!(seen.iter().all(|&c| c == 1), "every atom exactly once");
    }
}

/// Group-mapped coverage with correct tile attribution.
fn group_mapped_covers_exactly(counts: Vec<usize>, group_size: u32) {
    let w = CountedTiles::from_counts(counts);
    let sched = GroupMappedSchedule::new(&w, group_size);
    let spec = GpuSpec::test_tiny();
    let block = 16u32;
    let cfg = LaunchConfig::new(2, block).with_shared(sched.shared_bytes(block));
    let mut seen = vec![0u32; w.num_atoms().max(1)];
    {
        let gs = simt::GlobalMem::new(&mut seen);
        simt::launch_groups(&spec, cfg, group_size, |g| {
            sched.process(g, |_, tile, atom| {
                assert!(w.tile_atoms(tile).contains(&atom), "atom in claimed tile");
                gs.fetch_add(atom, 1);
            });
        })
        .unwrap();
    }
    if w.num_atoms() > 0 {
        assert!(seen.iter().all(|&c| c == 1));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn merge_path_partition_property(
        counts in prop::collection::vec(0usize..60, 0..80),
        ipt in 1usize..20,
    ) {
        merge_path_partitions_exactly(counts, ipt);
    }

    #[test]
    fn group_mapped_partition_property(
        counts in prop::collection::vec(0usize..60, 0..80),
        gs_pow in 0u32..5, // group sizes 1, 2, 4, 8, 16 — all divide block 16
    ) {
        group_mapped_covers_exactly(counts, 1 << gs_pow);
    }

    #[test]
    fn csr_coo_csc_roundtrips(
        triplets in prop::collection::vec((0u32..40, 0u32..30, -10i32..10), 0..200),
    ) {
        let entries: Vec<(u32, u32, f32)> = triplets
            .into_iter()
            .map(|(r, c, v)| (r, c, v as f32))
            .collect();
        let mut coo = sparse::Coo::empty(40, 30);
        for &(r, c, v) in &entries {
            coo.push(r, c, v).unwrap();
        }
        coo.canonicalize();
        let csr = sparse::convert::coo_to_csr(&coo);
        // CSR ↔ COO
        let back = sparse::convert::coo_to_csr(&sparse::convert::csr_to_coo(&csr));
        prop_assert_eq!(&csr, &back);
        // transpose(transpose) = id
        let tt = sparse::convert::transpose(&sparse::convert::transpose(&csr));
        prop_assert_eq!(&csr, &tt);
        // CSC SpMV equivalence
        let x = sparse::dense::test_vector(30);
        let csc = sparse::convert::csr_to_csc(&csr);
        let (y1, y2) = (csr.spmv_ref(&x), csc.spmv_ref(&x));
        for (a, b) in y1.iter().zip(&y2) {
            prop_assert!((a - b).abs() < 1e-3 * a.abs().max(1.0));
        }
    }

    #[test]
    fn spmv_schedules_agree_on_random_matrices(
        rows in 1usize..120,
        cols in 1usize..120,
        density_pct in 0usize..40,
        seed in 0u64..1000,
    ) {
        let nnz = rows * cols * density_pct / 100;
        let a = sparse::gen::uniform(rows, cols, nnz, seed);
        let x = sparse::dense::test_vector(cols);
        let want = a.spmv_ref(&x);
        let spec = GpuSpec::test_tiny();
        for kind in [ScheduleKind::ThreadMapped, ScheduleKind::MergePath, ScheduleKind::WarpMapped] {
            let run = kernels::spmv(&spec, &a, &x, kind).unwrap();
            let err = kernels::spmv::max_rel_error(&run.y, &want);
            prop_assert!(err < 2e-3, "{} err {}", kind, err);
        }
    }

    #[test]
    fn row_stats_invariants(lengths in prop::collection::vec(0usize..500, 1..200)) {
        let s = sparse::RowStats::from_lengths(&lengths);
        prop_assert!(s.min <= s.max);
        prop_assert!((0.0..=1.0).contains(&s.gini));
        prop_assert!((0.0..=1.0).contains(&s.empty_frac));
        prop_assert!(s.mean >= 0.0);
        if s.nnz > 0 {
            prop_assert!(s.max_over_mean >= 1.0 - 1e-9);
        }
    }

    #[test]
    fn counted_tiles_total_matches_sum(counts in prop::collection::vec(0usize..1000, 0..100)) {
        let total: usize = counts.iter().sum();
        let w = CountedTiles::from_counts(counts.clone());
        prop_assert_eq!(w.num_atoms(), total);
        prop_assert_eq!(w.num_tiles(), counts.len());
        for (t, &c) in counts.iter().enumerate() {
            prop_assert_eq!(w.atoms_in_tile(t), c);
        }
        prop_assert!(w.validate());
    }
}
