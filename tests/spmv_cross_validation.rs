//! Integration: every SpMV implementation in the workspace — five
//! framework schedules and two baselines — agrees with the CPU reference
//! across a structurally diverse corpus slice and across device specs.

use loops::schedule::ScheduleKind;
use simt::GpuSpec;
use sparse::Csr;

const SCHEDULES: [ScheduleKind; 6] = [
    ScheduleKind::ThreadMapped,
    ScheduleKind::MergePath,
    ScheduleKind::WarpMapped,
    ScheduleKind::BlockMapped,
    ScheduleKind::GroupMapped(16),
    ScheduleKind::GroupMapped(128),
];

fn check_everything(a: &Csr<f32>, spec: &GpuSpec, label: &str) {
    let x = sparse::dense::test_vector(a.cols());
    let want = a.spmv_ref(&x);
    for kind in SCHEDULES {
        let run = kernels::spmv(spec, a, &x, kind).unwrap();
        let err = kernels::spmv::max_rel_error(&run.y, &want);
        assert!(err < 2e-3, "{label}/{kind} on {}: err {err}", spec.name);
    }
    let cub = baselines::cub_spmv(spec, a, &x).unwrap();
    assert!(
        kernels::spmv::max_rel_error(&cub.y, &want) < 2e-3,
        "{label}/cub on {}",
        spec.name
    );
    let cus = baselines::cusparse_spmv(spec, a, &x).unwrap();
    assert!(
        kernels::spmv::max_rel_error(&cus.y, &want) < 2e-3,
        "{label}/cusparse on {}",
        spec.name
    );
}

#[test]
fn corpus_slice_validates_on_v100() {
    let spec = GpuSpec::v100();
    for spec_entry in sparse::corpus::corpus_subset(24) {
        if spec_entry.approx_nnz() > 250_000 {
            continue; // keep the integration test fast
        }
        let a = spec_entry.build();
        check_everything(&a, &spec, &spec_entry.name);
    }
}

#[test]
fn structural_extremes_validate() {
    let spec = GpuSpec::v100();
    for (label, a) in [
        ("empty", Csr::<f32>::empty(17, 9)),
        ("one_cell", Csr::from_triplets(1, 1, vec![(0u32, 0u32, 2.5f32)]).unwrap()),
        ("all_empty_rows", Csr::<f32>::empty(5_000, 5_000)),
        ("dense_single_row", sparse::gen::hub_rows(8, 50_000, 1, 50_000, 0, 3)),
        ("single_col", sparse::gen::single_column(4_000, 2_000, 4)),
        ("tall", sparse::gen::uniform(30_000, 40, 60_000, 5)),
        ("wide", sparse::gen::uniform(40, 30_000, 60_000, 6)),
    ] {
        check_everything(&a, &spec, label);
    }
}

#[test]
fn alternative_devices_validate() {
    let a = sparse::gen::powerlaw(2_000, 2_000, 30_000, 1.9, 7);
    for spec in [GpuSpec::a100(), GpuSpec::rtx3090(), GpuSpec::mi100(), GpuSpec::test_tiny()] {
        check_everything(&a, &spec, "powerlaw_2k");
    }
}

#[test]
fn heuristic_selection_always_validates() {
    let spec = GpuSpec::v100();
    let h = loops::Heuristic::paper();
    for entry in sparse::corpus::corpus_subset(16) {
        if entry.approx_nnz() > 250_000 {
            continue;
        }
        let a = entry.build();
        let x = sparse::dense::test_vector(a.cols());
        let kind = h.select(a.rows(), a.cols(), a.nnz());
        let run = kernels::spmv(&spec, &a, &x, kind).unwrap();
        let err = kernels::spmv::max_rel_error(&run.y, &a.spmv_ref(&x));
        assert!(err < 2e-3, "{} via {kind}: err {err}", entry.name);
    }
}
