//! Integration tests for the beyond-the-paper extensions: the dynamic
//! work-queue schedule, the ELL pre-balanced format, PageRank, and
//! multi-GPU partitioned SpMV — all against CPU references.

use kernels::spmv_multi::{spmv_multi, Partition};
use kernels::Graph;
use loops::schedule::ScheduleKind;
use simt::{GpuSpec, MultiGpuSpec};

#[test]
fn work_queue_spmv_matches_reference_across_chunks() {
    let spec = GpuSpec::v100();
    let a = sparse::gen::powerlaw(4_000, 4_000, 60_000, 1.8, 101);
    let x = sparse::dense::test_vector(a.cols());
    let want = a.spmv_ref(&x);
    for chunk in [1u32, 2, 7, 32, 1024] {
        let run = kernels::spmv(&spec, &a, &x, ScheduleKind::WorkQueue(chunk)).unwrap();
        let err = kernels::spmv::max_rel_error(&run.y, &want);
        assert!(err < 2e-3, "chunk {chunk}: err {err}");
        // Persistent shape: grid independent of problem size.
        assert_eq!(run.report.grid_dim, spec.num_sms * 8);
    }
}

#[test]
fn ell_pipeline_csr_to_ell_to_spmv() {
    let spec = GpuSpec::v100();
    let a = sparse::gen::stencil9(60, 60, 102);
    let e = sparse::Ell::from_csr(&a, 3.0).unwrap();
    let x = sparse::dense::test_vector(a.cols());
    let run = kernels::spmv::spmv_ell(&spec, &e, &x).unwrap();
    let err = kernels::spmv::max_rel_error(&run.y, &a.spmv_ref(&x));
    assert!(err < 2e-3);
    // Round-trip sanity.
    assert_eq!(e.to_csr(), a);
}

#[test]
fn pagerank_agrees_across_schedules() {
    let spec = GpuSpec::v100();
    let g = Graph::from_generator(sparse::gen::rmat(8, 8, (0.57, 0.19, 0.19), 103));
    let a = kernels::pagerank::pagerank(&spec, &g, ScheduleKind::MergePath, 1e-7, 150).unwrap();
    let b = kernels::pagerank::pagerank(&spec, &g, ScheduleKind::WorkQueue(8), 1e-7, 150).unwrap();
    for (x, y) in a.rank.iter().zip(&b.rank) {
        assert!((x - y).abs() < 1e-4);
    }
    let want = kernels::pagerank::pagerank_ref(&g, 1e-9, 300);
    for (x, w) in a.rank.iter().zip(&want) {
        assert!((x - w).abs() < 1e-4);
    }
}

#[test]
fn multi_gpu_matches_single_gpu_numerically() {
    let a = sparse::gen::uniform(5_000, 5_000, 80_000, 104);
    let x = sparse::dense::test_vector(a.cols());
    let single = kernels::spmv(&GpuSpec::v100(), &a, &x, ScheduleKind::MergePath).unwrap();
    for d in [2u32, 4, 8] {
        let multi = spmv_multi(
            &MultiGpuSpec::dgx_v100(d),
            &a,
            &x,
            ScheduleKind::MergePath,
            Partition::NnzBalanced,
        )
        .unwrap();
        let err = kernels::spmv::max_rel_error(&multi.y, &single.y);
        assert!(err < 1e-4, "d={d}: err {err}");
        assert_eq!(*multi.boundaries.last().unwrap(), a.rows());
    }
}

#[test]
fn multi_gpu_comm_cost_appears_only_beyond_one_device() {
    let a = sparse::gen::uniform(10_000, 10_000, 200_000, 105);
    let x = sparse::dense::test_vector(a.cols());
    let one = spmv_multi(
        &MultiGpuSpec::dgx_v100(1),
        &a,
        &x,
        ScheduleKind::MergePath,
        Partition::RowBlocks,
    )
    .unwrap();
    assert_eq!(one.report.comm_ms, 0.0);
    let four = spmv_multi(
        &MultiGpuSpec::dgx_v100(4),
        &a,
        &x,
        ScheduleKind::MergePath,
        Partition::RowBlocks,
    )
    .unwrap();
    assert!(four.report.comm_ms > 0.0);
    assert_eq!(four.report.per_device.len(), 4);
}

#[test]
fn custom_tile_sets_compose_with_every_schedule() {
    // The ELL adapter through the generic schedule machinery: run the
    // group-mapped schedule over an EllTiles set directly.
    use loops::adapters::EllTiles;
    use loops::schedule::GroupMappedSchedule;
    use loops::work::TileSet;
    let a = sparse::gen::banded(512, 2, 106);
    let e = sparse::Ell::from_csr(&a, 2.0).unwrap();
    let tiles = EllTiles::new(&e);
    let sched = GroupMappedSchedule::new(&tiles, 16);
    let spec = GpuSpec::test_tiny();
    let mut hits = vec![0u32; tiles.num_atoms()];
    {
        let g = simt::GlobalMem::new(&mut hits);
        let cfg = sched.launch_config(64, 64);
        simt::launch_groups(&spec, cfg, 16, |grp| {
            sched.process(grp, |_, tile, atom| {
                assert!(tiles.tile_atoms(tile).contains(&atom));
                g.fetch_add(atom, 1);
            });
        })
        .unwrap();
    }
    assert!(hits.iter().all(|&h| h == 1));
}
