//! The cross-kernel schedule-equivalence matrix: every kernel that takes
//! a [`ScheduleKind`] runs under *every* schedule over a small corpus and
//! must agree — bitwise — with its reference path:
//!
//! * **SpMV** against a preserved verbatim copy of the pre-engine legacy
//!   implementation (the seed's exact accumulation orders), including
//!   the full [`simt::LaunchReport`];
//! * **SpMM** against per-column SpMV under the same schedule — Listing
//!   4's "a loop wrapped around SpMV" claim, checked to the last bit;
//! * **multi-GPU SpMV** against the legacy path applied per row block;
//! * **BFS / SSSP / triangle** exactly against sequential references
//!   (integer outputs, and SSSP's unique `min`-fixpoint);
//! * **PageRank / CG** for bitwise run-to-run determinism per schedule,
//!   validated against the f64 references within tolerance (their
//!   lane-partial reductions are schedule-*dependent* by design, so
//!   cross-schedule bit equality is not expected).
//!
//! The closing proptest-style check (seeded in-repo generator, same
//! idiom as `proptest_invariants.rs`) drives engine and legacy SpMV over
//! random matrices, schedules, and block sizes.

use kernels::graph::Graph;
use kernels::spmv_multi::{spmv_multi, Partition};
use loops::schedule::ScheduleKind;
use simt::{CostModel, GpuSpec, LaunchReport};
use sparse::{Csr, DenseMatrix, FormatKind, Prng};

const ALL_KINDS: [ScheduleKind; 7] = [
    ScheduleKind::ThreadMapped,
    ScheduleKind::WarpMapped,
    ScheduleKind::BlockMapped,
    ScheduleKind::GroupMapped(16),
    ScheduleKind::MergePath,
    ScheduleKind::WorkQueue(8),
    ScheduleKind::Lrb,
];

fn corpus() -> Vec<Csr<f32>> {
    vec![
        sparse::gen::uniform(60, 50, 400, 11),
        sparse::gen::powerlaw(200, 200, 3_000, 1.8, 12),
        sparse::gen::banded(40, 3, 13),
        Csr::<f32>::empty(5, 5),
    ]
}

/// Square matrices reinterpreted as graphs for the traversal kernels.
fn graph_corpus() -> Vec<Graph> {
    vec![
        Graph::from_generator(sparse::gen::powerlaw(150, 150, 2_000, 1.8, 14)),
        Graph::from_generator(sparse::gen::uniform(80, 80, 600, 15)),
        Graph::from_generator(sparse::gen::banded(40, 3, 16)),
    ]
}

fn bits(y: &[f32]) -> Vec<u32> {
    y.iter().map(|v| v.to_bits()).collect()
}

#[test]
fn spmv_every_schedule_is_bitwise_equal_to_the_legacy_path_on_the_corpus() {
    let spec = GpuSpec::v100();
    let model = CostModel::standard();
    for a in corpus() {
        let x = sparse::dense::test_vector(a.cols());
        let want64 = a.spmv_ref(&x);
        for kind in ALL_KINDS {
            let run = kernels::spmv(&spec, &a, &x, kind).unwrap();
            let (ly, _, _) = legacy::spmv_with_model(&spec, &model, &a, &x, kind, 256).unwrap();
            assert_eq!(bits(&run.y), bits(&ly), "spmv {kind} on {}x{}", a.rows(), a.cols());
            let err = kernels::spmv::max_rel_error(&run.y, &want64);
            assert!(err < 2e-3, "spmv {kind}: err {err} vs f64 reference");
        }
    }
}

#[test]
fn spmm_every_schedule_is_bitwise_a_loop_around_spmv() {
    let spec = GpuSpec::v100();
    for a in corpus() {
        let b = DenseMatrix::from_fn(a.cols(), 3, |r, c| ((r + 2 * c) as f32).sin());
        for kind in ALL_KINDS {
            let run = kernels::spmm::spmm(&spec, &a, &b, kind).unwrap();
            // Listing 4: SpMM is a loop over B's columns around SpMV —
            // under the engine that equivalence is exact, column by
            // column, under the schedule SpMM resolved to.
            for j in 0..3 {
                let col: Vec<f32> = (0..a.cols()).map(|r| b.get(r, j)).collect();
                let want = kernels::spmv(&spec, &a, &col, run.schedule).unwrap();
                let got: Vec<f32> = (0..a.rows()).map(|r| run.c.get(r, j)).collect();
                assert_eq!(bits(&got), bits(&want.y), "spmm {kind} column {j}");
            }
        }
    }
}

#[test]
fn spmv_multi_every_schedule_and_partition_matches_the_legacy_path_per_block() {
    let mspec = simt::MultiGpuSpec::test_tiny(2);
    let model = CostModel::standard();
    for a in corpus() {
        let x = sparse::dense::test_vector(a.cols());
        for kind in ALL_KINDS {
            for part in [Partition::RowBlocks, Partition::NnzBalanced] {
                let run = spmv_multi(&mspec, &a, &x, kind, part).unwrap();
                let mut want = Vec::with_capacity(a.rows());
                for w in run.boundaries.windows(2) {
                    let block = a.row_slice(w[0]..w[1]);
                    let (ly, _, _) =
                        legacy::spmv_with_model(&mspec.device, &model, &block, &x, kind, 256)
                            .unwrap();
                    want.extend(ly);
                }
                assert_eq!(bits(&run.y), bits(&want), "spmv_multi {kind} {part:?}");
            }
        }
    }
}

#[test]
fn bfs_every_schedule_matches_the_reference_exactly() {
    let spec = GpuSpec::v100();
    for g in graph_corpus() {
        let want = kernels::reference::bfs_ref(g.adjacency(), 0);
        for kind in ALL_KINDS {
            let run = kernels::bfs::bfs(&spec, &g, 0, kind).unwrap();
            assert_eq!(run.depth, want, "bfs {kind}");
        }
    }
}

#[test]
fn sssp_every_schedule_reaches_the_same_fixpoint_bitwise() {
    let spec = GpuSpec::v100();
    for g in graph_corpus() {
        // Sequential f32 fixpoint: relax edges (ascending) until stable.
        // The minimal fixpoint of `dist[v] = min(dist[v], dist[u] + w)`
        // is unique, so every schedule must land on it bitwise.
        let adj = g.adjacency();
        let mut want = vec![f32::INFINITY; g.num_vertices()];
        want[0] = 0.0;
        loop {
            let mut changed = false;
            for u in 0..g.num_vertices() {
                for e in g.edge_range(u) {
                    let cand = want[u] + g.edge_weight(e);
                    let v = g.neighbor(e);
                    if cand < want[v] {
                        want[v] = cand;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        assert_eq!(adj.rows(), g.num_vertices());
        for kind in ALL_KINDS {
            let run = kernels::sssp::sssp(&spec, &g, 0, kind).unwrap();
            assert_eq!(bits(&run.dist), bits(&want), "sssp {kind}");
        }
    }
}

#[test]
fn triangle_every_schedule_counts_exactly() {
    let spec = GpuSpec::v100();
    for g in graph_corpus() {
        let want = kernels::triangle::triangle_count_ref(&g);
        for kind in ALL_KINDS {
            let run = kernels::triangle::triangle_count(&spec, &g, kind).unwrap();
            assert_eq!(run.triangles, want, "triangle {kind}");
        }
    }
}

#[test]
fn pagerank_and_cg_run_deterministically_under_every_schedule() {
    let spec = GpuSpec::v100();
    let g = Graph::from_generator(sparse::gen::powerlaw(120, 120, 1_500, 1.8, 17));
    let pr_want = kernels::pagerank::pagerank_ref(&g, 1e-9, 1_000);
    for kind in ALL_KINDS {
        let run = kernels::pagerank::pagerank(&spec, &g, kind, 1e-6, 100).unwrap();
        let again = kernels::pagerank::pagerank(&spec, &g, kind, 1e-6, 100).unwrap();
        assert_eq!(bits(&run.rank), bits(&again.rank), "pagerank {kind} must be deterministic");
        let total: f32 = run.rank.iter().sum();
        assert!((total - 1.0).abs() < 1e-3, "pagerank {kind}: ranks sum to {total}");
        for (v, (&got, &want)) in run.rank.iter().zip(&pr_want).enumerate() {
            assert!(
                (got - want).abs() < 1e-3,
                "pagerank {kind}: rank[{v}] = {got}, want {want}"
            );
        }
    }

    // SPD system for CG: A^T A + diagonal shift.
    let a = {
        let base = sparse::gen::uniform(50, 50, 300, 18);
        let t = kernels::reference::spgemm_ref(&transpose(&base), &base);
        add_diagonal(&t, 5.0)
    };
    let b: Vec<f32> = (0..a.rows()).map(|i| ((i % 7) as f32) - 3.0).collect();
    for kind in ALL_KINDS {
        let run = kernels::cg::cg(&spec, &a, &b, kind, 1e-7, 500).unwrap();
        let again = kernels::cg::cg(&spec, &a, &b, kind, 1e-7, 500).unwrap();
        assert_eq!(bits(&run.x), bits(&again.x), "cg {kind} must be deterministic");
        assert!(run.residual < 1e-3, "cg {kind}: residual {}", run.residual);
    }
}

fn transpose(a: &Csr<f32>) -> Csr<f32> {
    let mut triplets = Vec::with_capacity(a.nnz());
    for r in 0..a.rows() {
        let (cols, vals) = a.row(r);
        for (&c, &v) in cols.iter().zip(vals) {
            triplets.push((c, r as u32, v));
        }
    }
    Csr::from_triplets(a.cols(), a.rows(), triplets).expect("transpose is valid")
}

fn add_diagonal(a: &Csr<f32>, shift: f32) -> Csr<f32> {
    let mut triplets = Vec::with_capacity(a.nnz() + a.rows());
    for r in 0..a.rows() {
        let (cols, vals) = a.row(r);
        for (&c, &v) in cols.iter().zip(vals) {
            triplets.push((r as u32, c, v));
        }
        triplets.push((r as u32, r as u32, shift));
    }
    Csr::from_triplets(a.rows(), a.cols(), triplets).expect("shifted matrix is valid")
}

// ---------------------------------------------------------------------------
// Legacy oracle: the per-kernel SpMV path exactly as it existed before the
// dispatch engine, preserved verbatim so the refactor stays pinned — the
// engine must match it bitwise in results *and* in every report number.
// ---------------------------------------------------------------------------
mod legacy {
    use loops::adapters::CsrTiles;
    use loops::dispatch::largest_divisor_leq;
    use loops::schedule::{
        bin_of, GroupMappedSchedule, LrbSchedule, MergePathSchedule, ScheduleKind,
        ThreadMappedSchedule, WorkQueueSchedule,
    };
    use loops::work::SubsetTiles;
    use simt::{CostModel, GlobalMem, GpuSpec, LaunchConfig, LaunchReport};
    use sparse::Csr;

    const MERGE_ITEMS_PER_THREAD: usize = 7;

    pub fn spmv_with_model(
        spec: &GpuSpec,
        model: &CostModel,
        a: &Csr<f32>,
        x: &[f32],
        kind: ScheduleKind,
        block_dim: u32,
    ) -> simt::Result<(Vec<f32>, LaunchReport, ScheduleKind)> {
        assert_eq!(x.len(), a.cols(), "x must have one entry per column");
        let block_dim = block_dim.min(spec.max_threads_per_block);
        match kind {
            ScheduleKind::ThreadMapped => thread_mapped(spec, model, a, x, block_dim),
            ScheduleKind::MergePath => merge_path(spec, model, a, x, block_dim),
            ScheduleKind::WarpMapped => {
                group_mapped(spec, model, a, x, spec.warp_size, block_dim)
            }
            ScheduleKind::BlockMapped => group_mapped(spec, model, a, x, block_dim, block_dim),
            ScheduleKind::GroupMapped(g) => group_mapped(spec, model, a, x, g, block_dim),
            ScheduleKind::WorkQueue(chunk) => {
                work_queue(spec, model, a, x, chunk.max(1), block_dim)
            }
            ScheduleKind::Lrb => lrb(spec, model, a, x, block_dim),
        }
    }

    fn thread_mapped(
        spec: &GpuSpec,
        model: &CostModel,
        a: &Csr<f32>,
        x: &[f32],
        block_dim: u32,
    ) -> simt::Result<(Vec<f32>, LaunchReport, ScheduleKind)> {
        let work = CsrTiles::new(a);
        let sched = ThreadMappedSchedule::new(&work);
        let mut y = vec![0.0f32; a.rows()];
        let (values, col_indices) = (a.values(), a.col_indices());
        let cfg = LaunchConfig::over_threads(a.rows().max(1) as u64, block_dim);
        let report = {
            let gy = GlobalMem::new(&mut y);
            simt::launch_threads_with_model(spec, model, cfg, |t| {
                for row in sched.tiles(t) {
                    let mut sum = 0.0f32;
                    for nz in sched.atoms(row, t) {
                        sum += values[nz] * x[col_indices[nz] as usize];
                    }
                    gy.store(row, sum);
                    t.write_bytes(4);
                }
            })?
        };
        Ok((y, report, ScheduleKind::ThreadMapped))
    }

    fn merge_path(
        spec: &GpuSpec,
        model: &CostModel,
        a: &Csr<f32>,
        x: &[f32],
        block_dim: u32,
    ) -> simt::Result<(Vec<f32>, LaunchReport, ScheduleKind)> {
        let work = CsrTiles::new(a);
        let sched = MergePathSchedule::new(&work, MERGE_ITEMS_PER_THREAD);
        let mut y = vec![0.0f32; a.rows()];
        let (values, col_indices) = (a.values(), a.col_indices());
        let cfg = sched.launch_config(block_dim);
        let report = {
            let gy = GlobalMem::new(&mut y);
            simt::launch_threads_with_model(spec, model, cfg, |t| {
                for span in sched.spans(t) {
                    let mut sum = 0.0f32;
                    for nz in sched.atoms(&span, t) {
                        sum += values[nz] * x[col_indices[nz] as usize];
                    }
                    if span.complete {
                        gy.store(span.tile, sum);
                        t.write_bytes(4);
                    } else if !span.atoms.is_empty() {
                        gy.fetch_add(span.tile, sum);
                        t.charge_atomic();
                    }
                }
            })?
        };
        Ok((y, report, ScheduleKind::MergePath))
    }

    fn group_mapped(
        spec: &GpuSpec,
        model: &CostModel,
        a: &Csr<f32>,
        x: &[f32],
        group_size: u32,
        block_dim: u32,
    ) -> simt::Result<(Vec<f32>, LaunchReport, ScheduleKind)> {
        let group_size = group_size.clamp(1, block_dim);
        let group_size = largest_divisor_leq(block_dim, group_size);
        let work = CsrTiles::new(a);
        let sched = GroupMappedSchedule::new(&work, group_size);
        let mut y = vec![0.0f32; a.rows()];
        let (values, col_indices) = (a.values(), a.col_indices());
        let cfg = sched.launch_config(block_dim, spec.num_sms * 8);
        let report = {
            let gy = GlobalMem::new(&mut y);
            simt::launch_groups_with_model(spec, model, cfg, group_size, |g| {
                sched.process_batches(
                    g,
                    |_lane, _tile, nz| values[nz] * x[col_indices[nz] as usize],
                    |lane, tile, sum| {
                        gy.store(tile, sum);
                        lane.write_bytes(4);
                    },
                );
            })?
        };
        Ok((y, report, ScheduleKind::GroupMapped(group_size)))
    }

    fn work_queue(
        spec: &GpuSpec,
        model: &CostModel,
        a: &Csr<f32>,
        x: &[f32],
        chunk: u32,
        block_dim: u32,
    ) -> simt::Result<(Vec<f32>, LaunchReport, ScheduleKind)> {
        let work = CsrTiles::new(a);
        let sched = WorkQueueSchedule::new(&work, chunk as usize);
        let mut y = vec![0.0f32; a.rows()];
        let (values, col_indices) = (a.values(), a.col_indices());
        let cfg = sched.launch_config(spec, block_dim);
        let report = {
            let gy = GlobalMem::new(&mut y);
            simt::launch_threads_with_model(spec, model, cfg, |t| {
                sched.process_tiles(t, |lane, row| {
                    let mut sum = 0.0f32;
                    for nz in sched.atoms(row, lane) {
                        sum += values[nz] * x[col_indices[nz] as usize];
                    }
                    gy.store(row, sum);
                    lane.write_bytes(4);
                });
            })?
        };
        Ok((y, report, ScheduleKind::WorkQueue(chunk)))
    }

    fn lrb(
        spec: &GpuSpec,
        model: &CostModel,
        a: &Csr<f32>,
        x: &[f32],
        block_dim: u32,
    ) -> simt::Result<(Vec<f32>, LaunchReport, ScheduleKind)> {
        let work = CsrTiles::new(a);
        let cfg_sched = LrbSchedule {
            block_dim,
            ..LrbSchedule::default()
        };
        let plan = cfg_sched.bin_tiles(spec, model, &work)?;
        let mut report = Some(plan.binning_report.clone());
        let mut y = vec![0.0f32; a.rows()];
        let (values, col_indices) = (a.values(), a.col_indices());

        let small_hi = bin_of(cfg_sched.small_limit) + 1;
        let medium_hi = bin_of(cfg_sched.medium_limit) + 1;
        let class = |lo: usize, hi: usize| &plan.order[plan.bin_offsets[lo]..plan.bin_offsets[hi]];
        let small = class(0, small_hi);
        if !small.is_empty() {
            let view = SubsetTiles::new(&work, small);
            let sched = ThreadMappedSchedule::new(&view);
            let gy = GlobalMem::new(&mut y);
            let r = simt::launch_threads_with_model(
                spec,
                model,
                LaunchConfig::over_threads(small.len() as u64, block_dim),
                |t| {
                    for local in sched.tiles(t) {
                        let mut sum = 0.0f32;
                        for nz in sched.atoms(local, t) {
                            sum += values[nz] * x[col_indices[nz] as usize];
                        }
                        gy.store(view.global_tile(local), sum);
                        t.write_bytes(4);
                    }
                },
            )?;
            match report {
                Some(ref mut rep) => rep.accumulate(&r),
                None => report = Some(r),
            }
        }
        for (lo, hi, group) in [
            (small_hi, medium_hi, spec.warp_size),
            (medium_hi, loops::schedule::LRB_NUM_BINS, block_dim),
        ] {
            let tiles = class(lo, hi.max(lo));
            if tiles.is_empty() {
                continue;
            }
            let view = SubsetTiles::new(&work, tiles);
            let sched = GroupMappedSchedule::new(&view, group);
            let cfg = sched.launch_config(block_dim, spec.num_sms * 8);
            let gy = GlobalMem::new(&mut y);
            let r = simt::launch_groups_with_model(spec, model, cfg, group, |g| {
                sched.process_batches(
                    g,
                    |_lane, _local, nz| values[nz] * x[col_indices[nz] as usize],
                    |lane, local, sum| {
                        gy.store(view.global_tile(local), sum);
                        lane.write_bytes(4);
                    },
                );
            })?;
            match report {
                Some(ref mut rep) => rep.accumulate(&r),
                None => report = Some(r),
            }
        }
        let report = match report {
            Some(r) => r,
            None => simt::launch_threads_with_model(
                spec,
                model,
                LaunchConfig::over_threads(1, block_dim),
                |_t| {},
            )?,
        };
        Ok((y, report, ScheduleKind::Lrb))
    }
}

/// The serving formats (CSC stays analysis-only — [`spmv_format`]
/// refuses it, checked at the end of the format-axis test).
const SERVE_FORMATS: [FormatKind; 4] = [
    FormatKind::Csr,
    FormatKind::Coo,
    FormatKind::Ell,
    FormatKind::Hybrid,
];

/// Matrices spanning the format filters: skewed (hybrid's habitat),
/// floored scale-free (zero-pad slab), and regular (ELL's habitat).
fn format_corpus() -> Vec<Csr<f32>> {
    vec![
        sparse::gen::powerlaw(200, 200, 3_000, 1.8, 12),
        sparse::gen::powerlaw_floor(600, 600, 8, 5_130, 2.5, 19),
        sparse::gen::banded(40, 3, 13),
    ]
}

fn strip(r: &LaunchReport) -> LaunchReport {
    let mut r = r.clone();
    r.host_wall_ms = 0.0;
    r
}

/// The format axis of the matrix: every serving format under every
/// schedule, for SpMV, SpMM, and PageRank, against the CSR path.
///
/// * **Results** are bitwise-equal to the CSR path under the schedule
///   the cell coerces to ([`kernels::formats::coerce_for_format`]) —
///   padding, slab/tail splits, and coordinate scatter must never
///   change a single output bit.
/// * **LaunchReports** (sans the host wall-clock diagnostic) are
///   compared where the geometries agree: COO shares CSR's tile/atom
///   geometry exactly, so its reports must match CSR's number for
///   number. The padded formats deliberately charge differently (that
///   cost difference is what the format tuner trades on), so for them
///   the report contract is run-to-run determinism.
/// * **Every cell is deterministic**: a second run reproduces results
///   and the stripped report bit for bit.
#[test]
fn format_axis_every_cell_matches_the_csr_path_for_spmv_spmm_pagerank() {
    use kernels::formats::{coerce_for_format, pagerank_format, spmm_format, spmv_format};
    use kernels::PreparedOperand;

    let spec = GpuSpec::v100();
    let model = CostModel::standard();

    for a in format_corpus() {
        let x = sparse::dense::test_vector(a.cols());
        let b = DenseMatrix::from_fn(a.cols(), 3, |r, c| ((r + 2 * c) as f32).sin());
        let csr_op = PreparedOperand::prepare(&a, FormatKind::Csr).unwrap();
        for format in SERVE_FORMATS {
            let op = PreparedOperand::prepare(&a, format).unwrap();
            for kind in ALL_KINDS {
                let label = format!("{kind}@{format} on {}x{}", a.rows(), a.cols());
                let eff = coerce_for_format(format, kind);

                // SpMV: results vs the CSR path under the coerced
                // schedule; the whole run twice for determinism.
                let run = spmv_format(&spec, &model, &a, &op, &x, kind, 256).unwrap();
                let again = spmv_format(&spec, &model, &a, &op, &x, kind, 256).unwrap();
                let csr = kernels::spmv::spmv_with_model(&spec, &model, &a, &x, eff, 256).unwrap();
                assert_eq!(
                    run.schedule, csr.schedule,
                    "spmv {label}: resolved schedule vs the CSR path under {eff}"
                );
                assert_eq!(bits(&run.y), bits(&csr.y), "spmv {label}: y vs CSR path");
                assert_eq!(bits(&run.y), bits(&again.y), "spmv {label}: determinism");
                assert_eq!(
                    strip(&run.report),
                    strip(&again.report),
                    "spmv {label}: report determinism"
                );
                if format == FormatKind::Coo {
                    assert_eq!(
                        strip(&run.report),
                        strip(&csr.report),
                        "spmv {label}: COO shares CSR's geometry, so reports must match"
                    );
                }

                // SpMM: vs the CSR-operand cell under the schedule the
                // format cell coerces to (SpMM's own merge-path/thread-
                // mapped coercion applies first, then the format's —
                // e.g. the ELL cell downgrades merge-path to thread-
                // mapped, so the oracle must too).
                let spmm_eff = coerce_for_format(
                    format,
                    if kind == ScheduleKind::MergePath {
                        kind
                    } else {
                        ScheduleKind::ThreadMapped
                    },
                );
                let run = spmm_format(&spec, &model, &a, &op, &b, kind).unwrap();
                let again = spmm_format(&spec, &model, &a, &op, &b, kind).unwrap();
                let csr = spmm_format(&spec, &model, &a, &csr_op, &b, spmm_eff).unwrap();
                let flat = |c: &DenseMatrix<f32>| -> Vec<f32> {
                    (0..a.rows())
                        .flat_map(|r| (0..3).map(move |j| (r, j)))
                        .map(|(r, j)| c.get(r, j))
                        .collect()
                };
                assert_eq!(bits(&flat(&run.c)), bits(&flat(&csr.c)), "spmm {label}: C vs CSR path");
                assert_eq!(bits(&flat(&run.c)), bits(&flat(&again.c)), "spmm {label}: determinism");
                assert_eq!(
                    strip(&run.report),
                    strip(&again.report),
                    "spmm {label}: report determinism"
                );
            }
        }
    }

    // PageRank: the power iteration over Mᵀ prepared in each format,
    // against the CSR-format iteration under the coerced schedule —
    // identical inner SpMV bits mean the fixpoint trajectory never
    // diverges.
    let spec = GpuSpec::v100();
    for g in [
        Graph::from_generator(sparse::gen::powerlaw(150, 150, 2_000, 1.8, 14)),
        Graph::from_generator(sparse::gen::banded(40, 3, 16)),
    ] {
        for format in SERVE_FORMATS {
            for kind in ALL_KINDS {
                let label = format!("pagerank {kind}@{format}");
                let eff = coerce_for_format(format, kind);
                let run = pagerank_format(&spec, &g, kind, format, 1e-6, 60).unwrap();
                let again = pagerank_format(&spec, &g, kind, format, 1e-6, 60).unwrap();
                let csr = pagerank_format(&spec, &g, eff, FormatKind::Csr, 1e-6, 60).unwrap();
                assert_eq!(run.iterations, csr.iterations, "{label}: iteration count");
                assert_eq!(bits(&run.rank), bits(&csr.rank), "{label}: ranks vs CSR path");
                assert_eq!(bits(&run.rank), bits(&again.rank), "{label}: determinism");
                assert_eq!(
                    strip(&run.report),
                    strip(&again.report),
                    "{label}: report determinism"
                );
            }
        }
    }

    // CSC stays analysis-only: the serve path must refuse it loudly
    // rather than silently falling back to CSR.
    let a = sparse::gen::uniform(30, 30, 120, 44);
    let op = kernels::PreparedOperand::prepare(&a, FormatKind::Csc).unwrap();
    let x = sparse::dense::test_vector(30);
    let model = CostModel::standard();
    assert!(
        spmv_format(&GpuSpec::v100(), &model, &a, &op, &x, ScheduleKind::ThreadMapped, 256)
            .is_err(),
        "CSC must not be servable"
    );
}

/// Autotuned serving never changes numerics: for every kernel the
/// runtime tunes (SpMV, SpMM, BFS), drive a tuning-enabled runtime
/// through its sweep to promotion and compare each output — exploration
/// serves and warm post-promotion serves alike — against the plain
/// untuned kernel under the schedule that actually ran. Bitwise.
#[test]
fn tuned_runtime_outputs_match_untuned_kernels_for_every_kernel() {
    use runtime::{Runtime, RuntimeConfig, TuneConfig};

    let spec = GpuSpec::v100();
    let model = CostModel::standard();
    let tuned_runtime = || {
        Runtime::new(
            GpuSpec::v100(),
            RuntimeConfig {
                keep_results: true,
                tune: TuneConfig {
                    enabled: true,
                    epsilon: 1.0, // sweep straight through the space
                    ..TuneConfig::default()
                },
                ..RuntimeConfig::default()
            },
        )
    };

    // SpMV via the serving path: one request at a time so every serve is
    // a solo cache miss/hit with a recorded schedule.
    let a = std::sync::Arc::new(sparse::gen::powerlaw(500, 500, 6_000, 1.8, 21));
    let x: std::sync::Arc<[f32]> =
        std::sync::Arc::from(sparse::dense::test_vector(a.cols()).into_boxed_slice());
    let mut rt = tuned_runtime();
    for i in 0..16u64 {
        let req = runtime::Request {
            id: i,
            tenant: 0,
            matrix: std::sync::Arc::clone(&a),
            x: std::sync::Arc::clone(&x),
            arrival_ms: 0.0,
        };
        let out = rt.serve(std::slice::from_ref(&req)).unwrap();
        let c = &out.completions[0];
        let cold =
            kernels::spmv::spmv_with_model(&spec, &model, &a, &x, c.schedule, 256).unwrap();
        assert_eq!(
            bits(c.y.as_ref().unwrap()),
            bits(&cold.y),
            "spmv serve {i} under {} diverged from the untuned kernel",
            c.schedule
        );
        if rt.tune_stats().promotes == 1 {
            break;
        }
    }
    assert_eq!(rt.tune_stats().promotes, 1, "spmv sweep should promote");

    // SpMM: the tuned plan-cache path against the untuned kernel.
    let mut rt = tuned_runtime();
    let b = DenseMatrix::from_fn(a.cols(), 3, |r, c| ((r + 2 * c) as f32).sin());
    for i in 0..8 {
        let run = rt.run_spmm(&a, &b).unwrap();
        let cold = kernels::spmm::spmm_with_model(&spec, &model, &a, &b, run.schedule).unwrap();
        let got: Vec<f32> = (0..a.rows()).flat_map(|r| (0..3).map(move |j| (r, j)))
            .map(|(r, j)| run.output.get(r, j))
            .collect();
        let want: Vec<f32> = (0..a.rows()).flat_map(|r| (0..3).map(move |j| (r, j)))
            .map(|(r, j)| cold.c.get(r, j))
            .collect();
        assert_eq!(bits(&got), bits(&want), "spmm serve {i} under {}", run.schedule);
        if rt.tune_stats().promotes == 1 {
            break;
        }
    }
    assert_eq!(rt.tune_stats().promotes, 1, "spmm sweep should promote");

    // BFS: integer depths must match the reference whatever the tuner
    // explores.
    let g = std::sync::Arc::new(Graph::from_generator(sparse::gen::powerlaw(
        400, 400, 5_000, 1.8, 22,
    )));
    let want = kernels::reference::bfs_ref(g.adjacency(), 0);
    let mut rt = tuned_runtime();
    for i in 0..16 {
        let run = rt.run_bfs(&g, 0).unwrap();
        assert_eq!(run.output, want, "bfs serve {i} under {}", run.schedule);
        if rt.tune_stats().promotes == 1 {
            break;
        }
    }
    assert_eq!(rt.tune_stats().promotes, 1, "bfs sweep should promote");
}

/// The proptest: random matrices, random schedules, random block sizes —
/// engine and legacy paths must agree in output bits, resolved schedule,
/// and the entire launch report (modulo the host wall-clock diagnostic).
#[test]
fn engine_and_legacy_spmv_agree_on_random_cases() {
    const CASES: usize = 32;
    let spec = GpuSpec::v100();
    let model = CostModel::standard();
    let mut rng = Prng::seed_from_u64(0xD15BA7C4);
    for case in 0..CASES {
        let rows = rng.index(1, 400);
        let cols = rng.index(1, 400);
        let nnz = rng.index(0, rows * cols.min(40) + 1);
        let a = sparse::gen::powerlaw(rows, cols, nnz, 1.5 + 0.1 * (case % 8) as f64, case as u64);
        let x = sparse::dense::test_vector(a.cols());
        let kind = ALL_KINDS[rng.index(0, ALL_KINDS.len())];
        let block_dim = [64u32, 128, 256, 512][rng.index(0, 4)];

        let engine = kernels::spmv::spmv_with_model(&spec, &model, &a, &x, kind, block_dim)
            .unwrap_or_else(|e| panic!("case {case} ({kind}, block {block_dim}): {e:?}"));
        let (ly, lreport, lkind) =
            legacy::spmv_with_model(&spec, &model, &a, &x, kind, block_dim).unwrap();

        assert_eq!(bits(&engine.y), bits(&ly), "case {case}: y differs ({kind})");
        assert_eq!(engine.schedule, lkind, "case {case}: resolved schedule differs");
        let strip = |r: &LaunchReport| {
            let mut r = r.clone();
            r.host_wall_ms = 0.0;
            r
        };
        assert_eq!(
            strip(&engine.report),
            strip(&lreport),
            "case {case}: launch report differs ({kind}, block {block_dim})"
        );
    }
}
