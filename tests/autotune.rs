//! End-to-end acceptance for the online schedule autotuner:
//!
//! * the `autotune_bench` experiment is seeded — two runs of the same
//!   build produce byte-identical `autotune.json`;
//! * on a corpus where the static heuristic is known-suboptimal
//!   (banded: perfectly regular rows, heuristic still picks merge-path)
//!   the sweep converges to a schedule that is strictly cheaper;
//! * serving with tuning enabled never changes numerics: every
//!   completion — exploration serves included — is bitwise equal to the
//!   plain kernel run under the schedule that served it.

use std::sync::Arc;

use bench::cli::Cli;
use kernels::spmv::DEFAULT_BLOCK;
use runtime::{zipf_workload, Runtime, RuntimeConfig, TuneConfig, WorkloadSpec};
use simt::{CostModel, GpuSpec};
use sparse::Csr;

fn bits(y: &[f32]) -> Vec<u32> {
    y.iter().map(|v| v.to_bits()).collect()
}

fn tuned_runtime(epsilon: f64, keep_results: bool) -> Runtime {
    Runtime::new(
        GpuSpec::v100(),
        RuntimeConfig {
            keep_results,
            tune: TuneConfig {
                enabled: true,
                epsilon,
                ..TuneConfig::default()
            },
            ..RuntimeConfig::default()
        },
    )
}

/// Serve warm-up streams until every matrix's sweep promoted a winner.
fn drive_to_promotion(rt: &mut Runtime, matrices: &[Arc<Csr<f32>>]) {
    for round in 0..12 {
        if rt.tune_stats().promotes >= matrices.len() {
            return;
        }
        let reqs = zipf_workload(
            matrices,
            &WorkloadSpec {
                requests: 30,
                zipf_s: 1.1,
                mean_interarrival_ms: 0.05,
                seed: 77 + round,
            },
        );
        rt.serve(&reqs).expect("warmup serve");
    }
    panic!(
        "sweep did not promote all {} keys: {:?}",
        matrices.len(),
        rt.tune_stats()
    );
}

#[test]
fn autotune_report_is_byte_identical_across_runs() {
    let run_into = |tag: &str| {
        let dir = std::env::temp_dir().join(format!("gpu_loops_autotune_test_{tag}"));
        let cli = Cli {
            limit: Some(1), // scaled-down corpus; same code path as full size
            out_dir: dir.to_str().expect("utf-8 temp dir").to_string(),
            validate: false,
        };
        bench::autotune::run(&cli).expect("autotune bench run")
    };
    let a = run_into("a");
    let b = run_into("b");
    let bytes_a = std::fs::read(&a.json).expect("first report readable");
    let bytes_b = std::fs::read(&b.json).expect("second report readable");
    assert!(!bytes_a.is_empty());
    assert_eq!(
        bytes_a, bytes_b,
        "same seed must produce byte-identical autotune.json"
    );
    assert_eq!(a.families.len(), 3, "family list is flag-independent");
    for fam in &a.families {
        assert_eq!(
            fam.tune_promotes, fam.matrices,
            "{}: every matrix's sweep should finish inside warm-up",
            fam.family
        );
        assert!(fam.tuned_p50_ms > 0.0 && fam.static_p50_ms > 0.0);
    }
}

#[test]
fn tuner_converges_past_the_heuristic_on_a_banded_corpus() {
    // Banded rows are perfectly regular: merge-path's in-kernel searches
    // are pure overhead, yet the α/β heuristic still picks it (large
    // dims, large nnz). The sweep must find something strictly cheaper.
    let a = Arc::new(sparse::gen::banded(4_000, 6, 91));
    let spec = GpuSpec::v100();
    let model = CostModel::standard();
    let heuristic_kind = loops::heuristic::Heuristic::paper()
        .select(a.rows(), a.cols(), a.nnz());
    assert_eq!(
        heuristic_kind,
        loops::schedule::ScheduleKind::MergePath,
        "precondition: the heuristic picks merge-path here"
    );

    let mut rt = tuned_runtime(1.0, false);
    drive_to_promotion(&mut rt, std::slice::from_ref(&a));
    let (winner_kind, winner_format) = rt
        .tuned_candidate(loops::dispatch::KernelKind::Spmv, &a)
        .expect("sweep completed");
    assert!(
        (winner_kind, winner_format) != (heuristic_kind, sparse::FormatKind::Csr),
        "heuristic pick should lose here"
    );

    // The promotion is justified: the winner cell's warm cost is
    // strictly below the heuristic schedule's CSR warm cost. (For a
    // non-CSR winner the tuner additionally charged amortized
    // conversion, so its warm cost is below by an even wider margin.)
    let x = sparse::dense::test_vector(a.cols());
    let warm_csr = |kind| {
        let plan = kernels::plan::prepare(&spec, &model, &a, kind, DEFAULT_BLOCK).unwrap();
        kernels::spmv::spmv_with_plan(&spec, &model, &a, &x, &plan)
            .unwrap()
            .report
            .elapsed_ms()
    };
    let winner_cost = if winner_format == sparse::FormatKind::Csr {
        warm_csr(winner_kind)
    } else {
        let op = kernels::PreparedOperand::prepare(&a, winner_format).unwrap();
        let plan = kernels::formats::prepare_format_plan(
            &spec,
            &model,
            &a,
            &op,
            winner_kind,
            DEFAULT_BLOCK,
        )
        .unwrap();
        kernels::formats::spmv_format_with_plan(&spec, &model, &a, &op, &x, &plan)
            .unwrap()
            .report
            .elapsed_ms()
    };
    assert!(
        winner_cost < warm_csr(heuristic_kind),
        "{winner_kind}@{winner_format} should be cheaper than {heuristic_kind}"
    );
}

#[test]
fn every_tuned_completion_is_bitwise_equal_to_the_plain_kernel() {
    // Exploration serves run odd schedules mid-stream; none of them may
    // perturb numerics. Each completion must match the untuned kernel
    // under the schedule that actually served it, bit for bit.
    let matrices = vec![
        Arc::new(sparse::gen::powerlaw(600, 600, 8_000, 1.8, 41)),
        Arc::new(sparse::gen::banded(500, 4, 42)),
    ];
    let spec = GpuSpec::v100();
    let model = CostModel::standard();
    let mut rt = tuned_runtime(0.6, true);
    let reqs = zipf_workload(
        &matrices,
        &WorkloadSpec {
            requests: 80,
            zipf_s: 1.1,
            mean_interarrival_ms: 0.05,
            seed: 5,
        },
    );
    let by_id: std::collections::HashMap<u64, &runtime::Request> =
        reqs.iter().map(|r| (r.id, r)).collect();
    let out = rt.serve(&reqs).expect("tuned serve");
    assert!(out.report.tune_explores > 0, "tuning should have explored");
    assert!(out.report.reconciles());
    for c in &out.completions {
        if c.batched {
            continue; // fused launches bypass the plan cache and tuner
        }
        let r = by_id[&c.id];
        let y = c.y.as_ref().expect("keep_results is on");
        let cold = kernels::spmv::spmv_with_model(
            &spec,
            &model,
            &r.matrix,
            &r.x,
            c.schedule,
            DEFAULT_BLOCK,
        )
        .expect("cold run");
        assert_eq!(
            bits(y),
            bits(&cold.y),
            "request {} under {} diverged from the plain kernel",
            c.id,
            c.schedule
        );
    }
}
