//! Integration: BFS and SSSP across schedules, graph families, and
//! sources, validated against sequential references.

use kernels::{reference, Graph};
use loops::schedule::ScheduleKind;
use simt::GpuSpec;

const SCHEDULES: [ScheduleKind; 4] = [
    ScheduleKind::ThreadMapped,
    ScheduleKind::MergePath,
    ScheduleKind::WarpMapped,
    ScheduleKind::GroupMapped(16),
];

fn graphs() -> Vec<(&'static str, Graph)> {
    vec![
        ("rmat", Graph::from_generator(sparse::gen::rmat(10, 8, (0.57, 0.19, 0.19), 31))),
        ("uniform", Graph::from_generator(sparse::gen::uniform(700, 700, 5_600, 32))),
        ("band", Graph::from_generator(sparse::gen::banded(400, 2, 33))),
        ("hub", Graph::from_generator(sparse::gen::hub_rows(600, 600, 2, 300, 2, 34))),
    ]
}

#[test]
fn bfs_matches_reference_everywhere() {
    let spec = GpuSpec::v100();
    for (name, g) in graphs() {
        let srcs = [0usize, g.num_vertices() / 2];
        for src in srcs {
            let want = reference::bfs_ref(g.adjacency(), src);
            for kind in SCHEDULES {
                let run = kernels::bfs::bfs(&spec, &g, src, kind).unwrap();
                assert_eq!(run.depth, want, "{name} src={src} {kind}");
            }
        }
    }
}

#[test]
fn sssp_matches_dijkstra_everywhere() {
    let spec = GpuSpec::v100();
    for (name, g) in graphs() {
        let src = 1usize.min(g.num_vertices() - 1);
        let want = reference::sssp_ref(g.adjacency(), src);
        for kind in SCHEDULES {
            let run = kernels::sssp::sssp(&spec, &g, src, kind).unwrap();
            for (v, (&got, &expect)) in run.dist.iter().zip(&want).enumerate() {
                if expect.is_infinite() {
                    assert!(got.is_infinite(), "{name} {kind}: v{v} should be unreachable");
                } else {
                    assert!(
                        (got - expect).abs() < 1e-3 * expect.max(1.0),
                        "{name} {kind}: dist[{v}] = {got}, want {expect}"
                    );
                }
            }
        }
    }
}

#[test]
fn traversal_work_scales_with_frontier_not_graph() {
    // An isolated source on a big graph must finish in one cheap level.
    let mut triplets = vec![(0u32, 1u32, 1.0f32)];
    triplets.extend((2..5_000u32).map(|v| (v, v - 1, 1.0)));
    let adj = sparse::Csr::from_triplets(5_000, 5_000, triplets).unwrap();
    let g = Graph::new(adj);
    let spec = GpuSpec::v100();
    let run = kernels::bfs::bfs(&spec, &g, 0, ScheduleKind::MergePath).unwrap();
    assert_eq!(run.depth[1], 1);
    assert_eq!(run.iterations, 2); // expand {0}, then {1} (no out-edges)
}

#[test]
fn sssp_distances_dominate_bfs_times_min_weight() {
    let g = Graph::from_generator(sparse::gen::rmat(9, 8, (0.57, 0.19, 0.19), 35));
    // RMAT merges duplicate edges by summing, so derive the actual weight
    // bounds from the graph instead of assuming the generator's range.
    let (mut w_min, mut w_max) = (f32::INFINITY, 0.0f32);
    for e in 0..g.num_edges() {
        w_min = w_min.min(g.edge_weight(e));
        w_max = w_max.max(g.edge_weight(e));
    }
    let spec = GpuSpec::v100();
    let b = kernels::bfs::bfs(&spec, &g, 0, ScheduleKind::WarpMapped).unwrap();
    let s = kernels::sssp::sssp(&spec, &g, 0, ScheduleKind::WarpMapped).unwrap();
    for v in 0..g.num_vertices() {
        if b.depth[v] != u32::MAX {
            assert!(s.dist[v] <= w_max * b.depth[v] as f32 + 1e-3);
            assert!(s.dist[v] >= w_min * b.depth[v] as f32 - 1e-3);
        }
    }
}
