//! Integration: reproducibility guarantees.
//!
//! Generators are seed-deterministic; simulated *timing* is a pure
//! function of the inputs (no host wall-clock leaks into results); and
//! kernels whose writes are disjoint are bitwise reproducible across the
//! parallel executor's nondeterministic interleavings.

use loops::schedule::ScheduleKind;
use simt::GpuSpec;

#[test]
fn generators_reproduce_exactly() {
    for entry in sparse::corpus::corpus_subset(12) {
        if entry.approx_nnz() > 200_000 {
            continue;
        }
        assert_eq!(entry.build(), entry.build(), "{}", entry.name);
    }
}

#[test]
fn simulated_timing_is_identical_across_runs() {
    let spec = GpuSpec::v100();
    let a = sparse::gen::powerlaw(5_000, 5_000, 80_000, 1.8, 77);
    let x = sparse::dense::test_vector(a.cols());
    for kind in [
        ScheduleKind::ThreadMapped,
        ScheduleKind::MergePath,
        ScheduleKind::WarpMapped,
    ] {
        let r1 = kernels::spmv(&spec, &a, &x, kind).unwrap();
        let r2 = kernels::spmv(&spec, &a, &x, kind).unwrap();
        assert_eq!(
            r1.report.timing.elapsed_ms, r2.report.timing.elapsed_ms,
            "{kind}: timing must be deterministic"
        );
        assert_eq!(r1.report.timing.total_units, r2.report.timing.total_units);
        assert_eq!(r1.report.mem, r2.report.mem);
    }
}

#[test]
fn disjoint_write_kernels_are_bitwise_reproducible() {
    let spec = GpuSpec::v100();
    let a = sparse::gen::uniform(20_000, 20_000, 300_000, 78);
    let x = sparse::dense::test_vector(a.cols());
    // Thread-mapped and group-mapped write each row exactly once.
    for kind in [ScheduleKind::ThreadMapped, ScheduleKind::WarpMapped] {
        let y1 = kernels::spmv(&spec, &a, &x, kind).unwrap().y;
        let y2 = kernels::spmv(&spec, &a, &x, kind).unwrap().y;
        assert_eq!(y1, y2, "{kind}: bitwise reproducibility");
    }
}

#[test]
fn merge_path_complete_rows_are_bitwise_stable() {
    // Rows fully owned by one thread are written once; only straddling
    // rows go through atomics. With items_per_thread = 7, any row of ≥ 13
    // atoms necessarily straddles, so use a matrix of tiny rows where most
    // rows are complete — their values must be bitwise equal across runs.
    let spec = GpuSpec::v100();
    let a = sparse::gen::uniform(30_000, 30_000, 90_000, 79); // ~3 per row
    let x = sparse::dense::test_vector(a.cols());
    let y1 = kernels::spmv(&spec, &a, &x, ScheduleKind::MergePath).unwrap().y;
    let y2 = kernels::spmv(&spec, &a, &x, ScheduleKind::MergePath).unwrap().y;
    let identical = y1.iter().zip(&y2).filter(|(a, b)| a == b).count();
    // All rows agree bitwise except possibly the straddling minority.
    assert!(
        identical as f64 >= 0.95 * y1.len() as f64,
        "only {identical}/{} rows bitwise equal",
        y1.len()
    );
    // And everything agrees numerically regardless.
    assert!(kernels::spmv::max_rel_error(&y1, &y2) < 1e-5);
}

#[test]
fn corpus_subset_is_stable_across_calls() {
    assert_eq!(sparse::corpus::corpus_subset(30), sparse::corpus::corpus_subset(30));
}
