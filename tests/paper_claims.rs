//! Integration: the paper's headline claims, checked as *shape*
//! assertions on a fast corpus slice. EXPERIMENTS.md records the
//! full-corpus numbers; these tests pin the qualitative results so a
//! regression in any crate breaks the reproduction visibly.

use loops::schedule::ScheduleKind;
use simt::GpuSpec;

fn geomean(xs: &[f64]) -> f64 {
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Figure 2: the framework's merge-path stays within a few percent of the
/// hand-fused CUB-like implementation.
#[test]
fn fig2_abstraction_overhead_is_small() {
    let spec = GpuSpec::v100();
    let mut ratios = Vec::new();
    for entry in sparse::corpus::corpus_subset(20) {
        if entry.approx_nnz() > 500_000 {
            continue;
        }
        let a = entry.build();
        let x = sparse::dense::test_vector(a.cols());
        let ours = kernels::spmv(&spec, &a, &x, ScheduleKind::MergePath).unwrap();
        let cub = baselines::cub_spmv(&spec, &a, &x).unwrap();
        ratios.push(ours.report.elapsed_ms() / cub.report.elapsed_ms());
    }
    let g = geomean(&ratios);
    assert!(
        g < 1.10,
        "geomean slowdown vs CUB should be a few percent, got {:.1}%",
        (g - 1.0) * 100.0
    );
    assert!(g > 0.95, "framework should not mysteriously beat fused CUB: {g}");
}

/// §6.1: CUB's single-column heuristic beats running merge-path on a
/// sparse vector (in schedule work, the regime the paper plots).
#[test]
fn fig2_cub_single_column_heuristic_wins() {
    let spec = GpuSpec::v100();
    let a = sparse::gen::single_column(300_000, 200_000, 1);
    let x = vec![1.5f32];
    let fast = baselines::cub_spmv(&spec, &a, &x).unwrap();
    assert_eq!(fast.path, "cub-thread-mapped-spvv");
    let merge = baselines::cub_like::cub_merge_path_only(&spec, &a, &x).unwrap();
    assert!(fast.report.timing.compute_ms < merge.report.timing.compute_ms);
}

/// Figures 3/4: merge-path decisively beats the cuSparse-like baseline on
/// skewed matrices — the load-imbalance story.
#[test]
fn fig34_merge_path_wins_on_imbalance() {
    let spec = GpuSpec::v100();
    for (name, a, min_speedup) in [
        ("widestar", sparse::gen::hub_rows(1_000, 400_000, 1, 400_000, 1, 2), 5.0),
        ("powerlaw", sparse::gen::powerlaw(100_000, 100_000, 1_600_000, 1.7, 3), 1.3),
    ] {
        let x = sparse::dense::test_vector(a.cols());
        let ours = kernels::spmv(&spec, &a, &x, ScheduleKind::MergePath).unwrap();
        let base = baselines::cusparse_spmv(&spec, &a, &x).unwrap();
        let speedup = base.report.elapsed_ms() / ours.report.elapsed_ms();
        assert!(
            speedup > min_speedup,
            "{name}: speedup only {speedup:.2}x (need {min_speedup}x)"
        );
    }
}

/// Figure 3's other edge: thread-mapped *collapses* on imbalance (the
/// motivation of §1) but is fine on regular matrices.
#[test]
fn fig3_thread_mapped_landscape() {
    let spec = GpuSpec::v100();
    let x200 = sparse::dense::test_vector(200_000);
    let hub = sparse::gen::hub_rows(200_000, 200_000, 1, 200_000, 1, 4);
    let tm = kernels::spmv(&spec, &hub, &x200, ScheduleKind::ThreadMapped).unwrap();
    let mp = kernels::spmv(&spec, &hub, &x200, ScheduleKind::MergePath).unwrap();
    assert!(
        tm.report.elapsed_ms() > 10.0 * mp.report.elapsed_ms(),
        "thread-mapped should collapse on a star matrix: {} vs {}",
        tm.report.elapsed_ms(),
        mp.report.elapsed_ms()
    );
    let band = sparse::gen::banded(200_000, 2, 5);
    let tm = kernels::spmv(&spec, &band, &x200, ScheduleKind::ThreadMapped).unwrap();
    let mp = kernels::spmv(&spec, &band, &x200, ScheduleKind::MergePath).unwrap();
    assert!(
        tm.report.elapsed_ms() < 1.2 * mp.report.elapsed_ms(),
        "thread-mapped should be fine on a regular band: {} vs {}",
        tm.report.elapsed_ms(),
        mp.report.elapsed_ms()
    );
}

/// Figure 4: the heuristic-combined SpMV achieves a clear geomean speedup
/// over the cuSparse-like baseline on a corpus slice.
#[test]
fn fig4_heuristic_geomean_speedup() {
    let spec = GpuSpec::v100();
    let h = loops::Heuristic::paper();
    let mut speedups = Vec::new();
    for entry in sparse::corpus::corpus_subset(20) {
        if entry.approx_nnz() > 500_000 {
            continue;
        }
        let a = entry.build();
        let x = sparse::dense::test_vector(a.cols());
        let kind = h.select(a.rows(), a.cols(), a.nnz());
        let ours = kernels::spmv(&spec, &a, &x, kind).unwrap();
        let base = baselines::cusparse_spmv(&spec, &a, &x).unwrap();
        speedups.push(base.report.elapsed_ms() / ours.report.elapsed_ms());
    }
    let g = geomean(&speedups);
    assert!(g > 1.5, "heuristic geomean speedup should be >1.5x, got {g:.2}x");
}

/// Table 1: the framework expresses merge-path in an order of magnitude
/// fewer kernel-contributing lines than CUB's published 503.
#[test]
fn table1_loc_ratio_holds() {
    let merge = bench::loc::count_region_in_file(
        concat!(env!("CARGO_MANIFEST_DIR"), "/crates/core/src/schedule/merge_path.rs"),
        "merge_path",
    )
    .expect("region present");
    assert!(merge < 60, "framework merge-path region is {merge} LoC");
    assert!(503 / merge >= 8, "paper's 14x ratio should hold within 2x: 503/{merge}");
}
