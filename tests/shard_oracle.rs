//! The sharding oracle: N-shard execution must be **bitwise identical**
//! to the single-shard path — ISSUE 6's acceptance bar, checked on the
//! same corpus style as `dispatch_matrix.rs`.
//!
//! Three layers of the claim:
//!
//! * **SpMV, kernel level** — `runtime::split::split_spmv` over every
//!   partitioning strategy and 2/4/8 shards equals `kernels::spmv`
//!   under the pinned flat-span schedule on the whole matrix;
//! * **SpMV, serving level** — `ShardGroup::serve_split` completions at
//!   2/4/8 shards equal the 1-shard group's, request by request;
//! * **PageRank** — `ShardGroup::pagerank` (merge partials first, then
//!   global scalars) equals `kernels::pagerank` under the same pinned
//!   schedule, to the last bit and the same iteration count.
//!
//! Shard count and partition strategy may only ever change *timing*
//! (the halo-exchange charge), never result bits — the distributed
//! restatement of the repo's schedule-oracle discipline.

use std::sync::Arc;

use kernels::graph::Graph;
use runtime::split::{pinned_schedule, split_spmv};
use runtime::{zipf_workload, Request, Runtime, RuntimeConfig, WorkloadSpec};
use shard::{ShardGroup, ShardGroupConfig};
use simt::GpuSpec;
use sparse::{Csr, ShardPlan, ShardStrategy};

const SHARD_COUNTS: [usize; 3] = [2, 4, 8];
const STRATEGIES: [ShardStrategy; 3] = [
    ShardStrategy::Rows1D,
    ShardStrategy::Nnz1D,
    ShardStrategy::RowNnz2D,
];

fn corpus() -> Vec<Arc<Csr<f32>>> {
    vec![
        Arc::new(sparse::gen::uniform(600, 500, 8_000, 11)),
        Arc::new(sparse::gen::powerlaw(800, 800, 12_000, 1.8, 12)),
        Arc::new(sparse::gen::banded(400, 5, 13)),
        Arc::new(sparse::gen::rmat(9, 8, (0.57, 0.19, 0.19), 14)),
        Arc::new(Csr::<f32>::empty(5, 5)),
    ]
}

fn graph_corpus() -> Vec<Graph> {
    vec![
        Graph::from_generator(sparse::gen::powerlaw(300, 300, 4_000, 1.8, 15)),
        Graph::from_generator(sparse::gen::rmat(8, 8, (0.57, 0.19, 0.19), 16)),
        Graph::from_generator(sparse::gen::banded(120, 4, 17)),
    ]
}

fn bits(y: &[f32]) -> Vec<u32> {
    y.iter().map(|v| v.to_bits()).collect()
}

fn runtimes(n: usize) -> Vec<Runtime> {
    (0..n)
        .map(|_| Runtime::new(GpuSpec::v100(), RuntimeConfig::default()))
        .collect()
}

#[test]
fn split_spmv_matches_the_whole_matrix_kernel_on_every_strategy() {
    let spec = GpuSpec::v100();
    for a in corpus() {
        let x = sparse::dense::test_vector(a.cols());
        let kind = pinned_schedule(&a);
        let want = kernels::spmv(&spec, &a, &x, kind).unwrap().y;
        for strategy in STRATEGIES {
            for n in SHARD_COUNTS {
                let plan = ShardPlan::partition(a.as_ref(), n, strategy);
                let subs: Vec<Arc<Csr<f32>>> = (0..n)
                    .map(|s| Arc::new(plan.submatrix(a.as_ref(), s)))
                    .collect();
                let run = split_spmv(&mut runtimes(n), &subs, &x, kind).unwrap();
                assert_eq!(
                    bits(&run.y),
                    bits(&want),
                    "{n}-shard {} on {}x{} diverged from the whole-matrix kernel",
                    strategy.name(),
                    a.rows(),
                    a.cols()
                );
            }
        }
    }
}

#[test]
fn sharded_serving_completions_match_the_single_shard_group() {
    let reqs: Vec<Request> = zipf_workload(
        &corpus(),
        &WorkloadSpec {
            requests: 50,
            zipf_s: 1.1,
            mean_interarrival_ms: 0.05,
            seed: 77,
        },
    );
    let group = |n: usize| {
        let mut cfg = ShardGroupConfig::new(n);
        cfg.runtime.keep_results = true;
        ShardGroup::new(GpuSpec::v100(), cfg)
    };
    let base = group(1).serve_split(&reqs).unwrap();
    assert!(base.report.reconciles());
    for n in SHARD_COUNTS {
        let out = group(n).serve_split(&reqs).unwrap();
        assert!(out.report.reconciles(), "{n}-shard report must reconcile");
        assert_eq!(out.completions.len(), base.completions.len());
        for (got, want) in out.completions.iter().zip(&base.completions) {
            assert_eq!(got.id, want.id);
            assert_eq!(got.schedule, want.schedule, "pinned schedule drifted");
            assert_eq!(
                bits(got.y.as_ref().unwrap()),
                bits(want.y.as_ref().unwrap()),
                "request {} diverged at {n} shards",
                got.id
            );
        }
    }
}

#[test]
fn sharded_pagerank_matches_the_whole_graph_kernel() {
    let spec = GpuSpec::v100();
    for g in graph_corpus() {
        let mt = kernels::pagerank::normalized_transpose(&g);
        let kind = pinned_schedule(&mt);
        let want = kernels::pagerank::pagerank(&spec, &g, kind, 1e-6, 80).unwrap();
        for n in SHARD_COUNTS {
            let mut grp = ShardGroup::new(GpuSpec::v100(), ShardGroupConfig::new(n));
            let run = grp.pagerank(&g, 1e-6, 80).unwrap();
            assert_eq!(run.schedule, kind, "pinned schedule must match");
            assert_eq!(
                run.iterations, want.iterations,
                "{n}-shard pagerank converged differently"
            );
            assert_eq!(
                bits(&run.rank),
                bits(&want.rank),
                "{n}-shard pagerank ranks diverged on {} vertices",
                g.num_vertices()
            );
        }
    }
}
