//! Acceptance tests for the tracing subsystem: the `profile` experiment
//! writes valid Chrome Trace Event JSON with correct span nesting, and
//! tracing never perturbs simulation results.

use std::sync::Arc;

use bench::cli::Cli;
use simt::{GpuSpec, LaunchConfig};
use trace::json::{self, Value};

const EPS: f64 = 1e-6; // µs-scale float slack for containment checks

fn num(obj: &Value, key: &str) -> f64 {
    obj.get(key)
        .and_then(Value::as_num)
        .unwrap_or_else(|| panic!("missing numeric '{key}' in {obj:?}"))
}

fn cat(obj: &Value) -> &str {
    obj.get("cat").and_then(Value::as_str).unwrap_or("")
}

fn arg(obj: &Value, key: &str) -> f64 {
    obj.get("args")
        .and_then(|a| a.get(key))
        .and_then(Value::as_num)
        .unwrap_or_else(|| panic!("missing args.{key} in {obj:?}"))
}

/// Parse a written trace back and assert the format contract: a JSON
/// array whose every object carries name/ph/ts/dur/pid/tid.
fn load_trace(path: &std::path::Path) -> Vec<Value> {
    let text = std::fs::read_to_string(path).expect("trace file readable");
    let doc = json::parse(&text).expect("trace is valid JSON");
    let arr = doc.as_arr().expect("trace document is an array").to_vec();
    assert!(!arr.is_empty(), "{} is empty", path.display());
    for obj in &arr {
        assert!(obj.as_obj().is_some(), "non-object event: {obj:?}");
        for key in ["name", "ph", "ts", "dur", "pid", "tid"] {
            assert!(obj.get(key).is_some(), "missing '{key}' in {obj:?}");
        }
        let ph = obj.get("ph").and_then(Value::as_str).unwrap();
        assert!(
            matches!(ph, "X" | "i" | "C"),
            "unexpected phase '{ph}' in {obj:?}"
        );
        assert!(num(obj, "dur") >= 0.0);
    }
    arr
}

#[test]
fn profile_outputs_are_valid_chrome_traces_with_nested_spans() {
    let dir = std::env::temp_dir().join("gpu_loops_trace_profile_test");
    let cli = Cli {
        limit: Some(1),
        out_dir: dir.to_str().expect("utf-8 temp dir").to_string(),
        validate: false,
    };
    let outputs = bench::profile::run(&cli).expect("profile run succeeds");

    // ---- SpMV trace: every block span nests inside its kernel span ----
    let spmv = load_trace(&outputs.spmv_json);
    let kernels: Vec<&Value> = spmv.iter().filter(|o| cat(o) == "kernel").collect();
    let blocks: Vec<&Value> = spmv.iter().filter(|o| cat(o) == "block").collect();
    assert_eq!(kernels.len(), 3, "three schedules traced");
    assert!(!blocks.is_empty());
    for b in &blocks {
        let kid = arg(b, "kernel");
        let k = kernels
            .iter()
            .find(|k| arg(k, "kernel") == kid)
            .unwrap_or_else(|| panic!("block references unknown kernel {kid}"));
        let (kts, kdur) = (num(k, "ts"), num(k, "dur"));
        let (bts, bdur) = (num(b, "ts"), num(b, "dur"));
        assert!(
            bts >= kts - EPS && bts + bdur <= kts + kdur + EPS,
            "block [{bts}, {}] outside kernel [{kts}, {}]",
            bts + bdur,
            kts + kdur
        );
    }

    // ---- serve trace: ≥200 requests, dispatches nest in request spans ----
    let serve = load_trace(&outputs.serve_json);
    let enqueues = serve
        .iter()
        .filter(|o| {
            cat(o) == "request" && o.get("name").and_then(Value::as_str) == Some("enqueue")
        })
        .count();
    assert!(enqueues >= 200, "only {enqueues} requests in serve trace");
    let spans: Vec<&Value> = serve
        .iter()
        .filter(|o| {
            cat(o) == "request" && o.get("ph").and_then(Value::as_str) == Some("X")
        })
        .collect();
    let dispatches: Vec<&Value> = serve.iter().filter(|o| cat(o) == "dispatch").collect();
    assert!(!spans.is_empty());
    assert!(!dispatches.is_empty());
    for d in &dispatches {
        let id = arg(d, "id");
        let s = spans
            .iter()
            .find(|s| arg(s, "id") == id)
            .unwrap_or_else(|| panic!("dispatch for request {id} has no request span"));
        let (sts, sdur) = (num(s, "ts"), num(s, "dur"));
        let (dts, ddur) = (num(d, "ts"), num(d, "dur"));
        assert!(
            dts >= sts - EPS && dts + ddur <= sts + sdur + EPS,
            "dispatch [{dts}, {}] outside request span [{sts}, {}]",
            dts + ddur,
            sts + sdur
        );
    }
    // Device kernels appear in the serve trace too (via replay_named).
    assert!(serve.iter().any(|o| cat(o) == "kernel"));
    // Counters flowed from the runtime.
    assert!(serve
        .iter()
        .any(|o| o.get("name").and_then(Value::as_str) == Some("queue_depth")));

    // Long-pole CSV exists with the expected header.
    let poles = std::fs::read_to_string(&outputs.longpoles_csv).expect("longpoles.csv");
    assert!(poles.starts_with("trace,kernel,block,sm,start_ms,busy_ms"));
}

#[test]
fn traced_launch_report_exactly_equals_untraced() {
    let spec = GpuSpec::v100();
    let cfg = LaunchConfig::new(96, 256);
    // A divergent kernel so the traced path exercises the warp-stats
    // collection, not just the event emission.
    let kernel = |t: &simt::LaneCtx<'_>| {
        if t.lane_id() < 4 {
            t.charge(200.0);
        } else {
            t.charge(3.0);
        }
        t.read_bytes(32);
    };
    let mut plain = simt::launch_threads(&spec, cfg, kernel).unwrap();
    let rec = Arc::new(trace::Recorder::new());
    let mut traced = simt::tracing::scoped(rec.clone(), "divergent", || {
        simt::launch_threads(&spec, cfg, kernel)
    })
    .unwrap();
    // host_wall_ms is host wall-clock (diagnostic only) and differs
    // between any two runs, traced or not; everything else must be
    // bitwise identical.
    plain.host_wall_ms = 0.0;
    traced.host_wall_ms = 0.0;
    assert_eq!(plain, traced);
    // And the trace actually recorded the launch.
    let data = rec.snapshot();
    assert_eq!(data.kernels().count(), 1);
    assert_eq!(data.blocks, 96);
    assert!(data.divergence.total > 0, "warp stats were collected");
}
