//! Telemetry contract tests: observation must be free.
//!
//! The windowed-metrics subsystem rides the same `TraceSink` gate as
//! the Chrome-trace recorder, so the whole contract reduces to: a run
//! with a collector attached is **bitwise identical** to the same run
//! without one — completions, reports, and fault outcomes included —
//! while the collector's own exports are byte-identical across
//! repeated runs.

use std::sync::Arc;

use bench::telemetry::{
    baseline_json, collector_config, compare, gate_metrics, parse_baseline, run_instrumented,
    run_uninstrumented, serve_matrices, serve_requests, DEFAULT_TOLERANCE,
};
use runtime::{Completion, Runtime, RuntimeConfig, ServeResult};
use simt::{FaultPlan, GpuSpec};
use telemetry::{TelemetryCollector, TelemetrySnapshot};

/// Everything observable about a serve outcome, rendered bit-faithfully
/// (f64 Debug is shortest-roundtrip, so equal strings ⇒ equal bits).
fn fingerprint(out: &ServeResult) -> String {
    let y_checksum: u64 = out
        .completions
        .iter()
        .flat_map(|c| c.y.iter().flatten())
        .fold(0u64, |acc, v| acc.wrapping_add(u64::from(v.to_bits())));
    format!(
        "completions={:?}\ndropped={:?}\nreport={:?}\ny_checksum={y_checksum}",
        out.completions
            .iter()
            .map(|c: &Completion| {
                (
                    c.id,
                    c.arrival_ms.to_bits(),
                    c.start_ms.to_bits(),
                    c.end_ms.to_bits(),
                    c.device,
                    c.batched,
                    c.cache_hit,
                    c.attempts,
                )
            })
            .collect::<Vec<_>>(),
        out.dropped,
        out.report,
    )
}

fn chaos_serve(instrumented: bool) -> (ServeResult, Option<TelemetrySnapshot>) {
    // Mirror of `bench::profile`'s chaos scenario: tight deadlines,
    // chaos-injected plan failures, one distinct fault mode per device.
    let matrices: Vec<_> = serve_matrices().into_iter().take(4).collect();
    let requests = serve_requests(&matrices);
    let mut rt = Runtime::new(
        GpuSpec::v100(),
        RuntimeConfig {
            devices: 3,
            keep_results: true,
            deadline_ms: 3.0,
            plan_fail_prob: 0.15,
            ..RuntimeConfig::default()
        },
    );
    rt.set_fault_plan(0, FaultPlan::healthy(0xC0FFEE).with_flaky_launches(0.15));
    rt.set_fault_plan(
        1,
        FaultPlan::healthy(0xBEEF)
            .with_degraded_sms(0.25, 0.4, 0.8)
            .with_stall(0.3, 0.15),
    );
    rt.set_fault_plan(2, FaultPlan::healthy(0xDEAD).with_kill_at(0.5));
    let collector = instrumented.then(|| Arc::new(TelemetryCollector::new(collector_config())));
    if let Some(c) = &collector {
        rt.set_trace_sink(c.clone());
    }
    let out = rt.serve(&requests).expect("chaos serve");
    (out, collector.map(|c| c.finish()))
}

#[test]
fn instrumentation_is_bitwise_invisible_on_clean_serve() {
    let bare = run_uninstrumented();
    let (observed, snap) = run_instrumented(None);
    assert_eq!(
        fingerprint(&bare),
        fingerprint(&observed),
        "attaching the telemetry collector must not change the run"
    );
    // ...and the collector did actually observe the run.
    assert!(snap.registry.counter_total("requests_total", "") >= 240.0);
    assert!(snap.registry.max_window().is_some());
}

#[test]
fn instrumentation_is_bitwise_invisible_under_chaos() {
    let (bare, _) = chaos_serve(false);
    let (observed, snap) = chaos_serve(true);
    assert_eq!(
        fingerprint(&bare),
        fingerprint(&observed),
        "telemetry must not perturb fault injection, retries, or failover"
    );
    let snap = snap.unwrap();
    // The chaos run's fault storm is visible in the telemetry...
    let faults: f64 = snap
        .registry
        .counter_label_sets("faults_total")
        .iter()
        .map(|l| snap.registry.counter_total("faults_total", l))
        .sum();
    assert!(faults > 0.0, "chaos faults must reach the fault counters");
}

#[test]
fn slo_engine_fires_under_deadline_pressure() {
    // A deadline far below the queueing delay: most of the stream
    // misses, so per-tenant budget burn blows past the alert threshold.
    let requests = serve_requests(&serve_matrices());
    let mut rt = Runtime::new(
        GpuSpec::v100(),
        RuntimeConfig {
            devices: 1,
            deadline_ms: 0.02,
            ..RuntimeConfig::default()
        },
    );
    let collector = Arc::new(TelemetryCollector::new(collector_config()));
    rt.set_trace_sink(collector.clone());
    let out = rt.serve(&requests).expect("pressured serve");
    assert!(out.report.deadline_missed > 0, "scenario must miss deadlines");
    let snap = collector.finish();
    assert!(
        snap.alerts
            .iter()
            .any(|a| a.kind == trace::AlertKind::SloBurnRate),
        "sustained deadline misses must fire burn-rate alerts, got {:?}",
        snap.alerts
    );
}

#[test]
fn telemetry_exports_are_byte_identical_across_runs() {
    let (_, a) = run_instrumented(None);
    let (_, b) = run_instrumented(None);
    assert_eq!(telemetry::to_csv(&a), telemetry::to_csv(&b));
    assert_eq!(telemetry::to_prometheus(&a), telemetry::to_prometheus(&b));
}

#[test]
fn parallel_backend_reproduces_committed_artifacts_byte_for_byte() {
    // The committed `results/` artifacts were generated on the
    // sequential backend. Regenerating them under `Parallel { 4 }` must
    // produce the *same bytes* — the end-to-end witness that the
    // parallel host executor changes nothing observable: every counter,
    // every `{:.9}`-rendered latency, the wrapping result checksum, and
    // every windowed telemetry row.
    use bench::cli::Cli;
    use bench::telemetry::export_snapshot;
    use simt::HostBackend;

    // Unique per-process scratch dir: concurrent invocations (CI legs,
    // a local run alongside CI) must not race on the same files.
    let out_path =
        std::env::temp_dir().join(format!("loops_parallel_artifact_diff_{}", std::process::id()));
    let out_dir = out_path.to_str().expect("utf-8 temp dir").to_string();
    let backend = HostBackend::Parallel { threads: 4 };

    let committed = |name: &str| {
        let path = format!("{}/results/{name}", env!("CARGO_MANIFEST_DIR"));
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
    };
    let generated = |path: &std::path::Path| {
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
    };

    // Chaos report + chaos telemetry, exactly as `profile` writes them.
    let cli = Cli {
        limit: Some(2),
        out_dir: out_dir.clone(),
        validate: false,
    };
    let (chaos_json, chaos_csv) =
        simt::host::scoped(backend, || bench::profile::chaos_serve(&cli)).expect("chaos serve");
    assert_eq!(
        generated(&chaos_json),
        committed("chaos_serve.json"),
        "chaos_serve.json must be byte-identical under the parallel backend"
    );
    assert_eq!(
        generated(&chaos_csv),
        committed("chaos_telemetry.csv"),
        "chaos_telemetry.csv must be byte-identical under the parallel backend"
    );

    // Clean serve telemetry, exactly as `profile` exports it.
    let (_, snap) = simt::host::scoped(backend, || run_instrumented(None));
    let tele = export_snapshot(&out_dir, "telemetry_serve", &snap).expect("export");
    assert_eq!(
        generated(&tele.csv),
        committed("telemetry_serve.csv"),
        "telemetry_serve.csv must be byte-identical under the parallel backend"
    );
    assert_eq!(
        generated(&tele.prom),
        committed("telemetry_serve.prom"),
        "telemetry_serve.prom must be byte-identical under the parallel backend"
    );

    let _ = std::fs::remove_dir_all(&out_path);
}

#[test]
fn gate_passes_at_default_tolerance_and_fails_at_zero() {
    // Round-trip a fresh baseline exactly the way `--write-baseline`
    // does, then gate a second fresh run against it.
    let (out, snap) = run_instrumented(None);
    let baseline = parse_baseline(&baseline_json(&gate_metrics(&out, &snap))).unwrap();
    let (out2, snap2) = run_instrumented(None);
    let fresh = gate_metrics(&out2, &snap2);
    assert!(
        compare(&baseline, &fresh, DEFAULT_TOLERANCE).is_empty(),
        "a deterministic re-run must pass the default gate"
    );
    assert!(
        !compare(&baseline, &fresh, 0.0).is_empty(),
        "the rounded baseline must differ from full precision, so the gate \
         demonstrably compares numbers"
    );
}

#[test]
fn gate_catches_a_planted_regression() {
    let (out, snap) = run_instrumented(None);
    let baseline = parse_baseline(&baseline_json(&gate_metrics(&out, &snap))).unwrap();
    let mut regressed = gate_metrics(&out, &snap);
    let p99 = regressed.get_mut("latency_p99_ms").unwrap();
    *p99 *= 1.5;
    let failures = compare(&baseline, &regressed, DEFAULT_TOLERANCE);
    assert_eq!(failures.len(), 1, "{failures:?}");
    assert!(failures[0].contains("latency_p99_ms"));
}
