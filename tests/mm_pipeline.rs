//! Integration: the artifact's file pipeline — write a matrix as
//! MatrixMarket, read it back, and run the full load-balanced SpMV on it,
//! exactly as `run.sh` does per `.mtx` file.

use loops::schedule::ScheduleKind;
use simt::GpuSpec;

#[test]
fn mtx_roundtrip_then_spmv() {
    let a = sparse::gen::powerlaw(500, 400, 6_000, 2.0, 90);
    let mut buf = Vec::new();
    sparse::mm::write_csr(&mut buf, &a).unwrap();
    let back = sparse::mm::read_csr(buf.as_slice()).unwrap();
    assert_eq!(a.rows(), back.rows());
    assert_eq!(a.cols(), back.cols());
    assert_eq!(a.nnz(), back.nnz());
    assert_eq!(a.row_offsets(), back.row_offsets());
    assert_eq!(a.col_indices(), back.col_indices());
    // Values go through decimal text; compare with tolerance.
    for (u, v) in a.values().iter().zip(back.values()) {
        assert!((u - v).abs() < 1e-5);
    }

    let x = sparse::dense::test_vector(back.cols());
    let run = kernels::spmv(&GpuSpec::v100(), &back, &x, ScheduleKind::MergePath).unwrap();
    let err = kernels::spmv::max_rel_error(&run.y, &back.spmv_ref(&x));
    assert!(err < 2e-3);
}

#[test]
fn mtx_file_on_disk_like_run_sh() {
    let dir = std::env::temp_dir().join("loops_mtx_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("test_matrix.mtx");
    let a = sparse::gen::uniform(200, 200, 2_000, 91);
    {
        let f = std::fs::File::create(&path).unwrap();
        sparse::mm::write_csr(std::io::BufWriter::new(f), &a).unwrap();
    }
    let back = sparse::mm::read_csr_path(&path).unwrap();
    assert_eq!(back.nnz(), a.nnz());
    // "Some runs are expected to fail as they are not in proper
    // MatrixMarket format" — and must fail *cleanly*, not panic.
    std::fs::write(dir.join("broken.mtx"), "this is not a matrix\n").unwrap();
    let err = sparse::mm::read_csr_path(dir.join("broken.mtx"));
    assert!(matches!(err, Err(sparse::Error::Parse { .. })));
    let gone = sparse::mm::read_csr_path(dir.join("missing.mtx"));
    assert!(matches!(gone, Err(sparse::Error::Io(_))));
}

#[test]
fn symmetric_mtx_expands_before_scheduling() {
    let src = "%%MatrixMarket matrix coordinate real symmetric\n\
        4 4 4\n\
        1 1 2.0\n\
        2 1 1.0\n\
        3 2 1.0\n\
        4 3 1.0\n";
    let a = sparse::mm::read_csr(src.as_bytes()).unwrap();
    assert_eq!(a.nnz(), 7); // 3 off-diagonal pairs + 1 diagonal
    let x = vec![1.0f32; 4];
    let run = kernels::spmv(&GpuSpec::test_tiny(), &a, &x, ScheduleKind::WarpMapped).unwrap();
    assert_eq!(run.y, a.spmv_ref(&x));
}
